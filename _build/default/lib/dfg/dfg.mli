(** Data-flow graphs (paper §3).

    A node represents an operation and carries a {e color} (its operation
    type); a directed edge represents a data dependency.  The graph is a DAG:
    [Builder.build] verifies acyclicity.

    Nodes are identified by dense integer ids [0 .. node_count-1], which the
    analyses (levels, reachability, antichain enumeration) exploit for
    array-indexed storage.  Each node also has a human-readable name ("a24",
    "b3", …) used by parsers, traces and everything printed next to the
    paper's tables. *)

type t

type node = private {
  id : int;
  name : string;
  color : Color.t;
}

exception Cycle of string list
(** Raised by {!Builder.build} with the names of the nodes on one offending
    cycle, in order. *)

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_node : t -> ?name:string -> Color.t -> int
  (** Returns the new node's id.  [name] defaults to the color letter
      followed by the id (e.g. ["a7"]).
      @raise Invalid_argument if the name is already taken or empty. *)

  val add_edge : t -> int -> int -> unit
  (** [add_edge b src dst].  Duplicate edges are collapsed; self-loops are
      rejected immediately.
      @raise Invalid_argument on unknown ids or [src = dst]. *)

  val build : t -> graph
  (** Freezes the graph.  @raise Cycle if the edge relation is cyclic.
      The builder may keep being extended afterwards; each [build] takes a
      snapshot. *)
end

val of_alist : (string * Color.t) list -> (string * string) list -> t
(** [of_alist nodes edges] builds a graph from named nodes and name pairs —
    the convenient form for hand-written graphs like the paper's examples.
    Ids are assigned in list order.
    @raise Invalid_argument on duplicate or unknown names.
    @raise Cycle as for [Builder.build]. *)

(** {1 Accessors} *)

val node_count : t -> int
val edge_count : t -> int

val node : t -> int -> node
(** @raise Invalid_argument on an out-of-range id (everywhere below too). *)

val name : t -> int -> string
val color : t -> int -> Color.t

val find : t -> string -> int
(** Node id by name.  @raise Not_found. *)

val find_opt : t -> string -> int option

val succs : t -> int -> int list
(** Direct successors, increasing id order. *)

val preds : t -> int -> int list
(** Direct predecessors, increasing id order. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val sources : t -> int list
(** Nodes with no predecessors, increasing id. *)

val sinks : t -> int list
(** Nodes with no successors, increasing id. *)

val nodes : t -> int list
(** All ids, increasing. *)

val edges : t -> (int * int) list
(** All edges, lexicographic order. *)

val iter_nodes : (int -> unit) -> t -> unit
val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (int -> int -> unit) -> t -> unit

val colors : t -> Color.t list
(** The complete color set L of the graph (§5.2), sorted, deduplicated. *)

val color_counts : t -> (Color.t * int) list
(** Distinct colors with the number of nodes of each, sorted by color. *)

val equal : t -> t -> bool
(** Same node names, colors and edge relation (ids may differ). *)

(** {1 Derived graphs} *)

val reverse : t -> t
(** Same nodes, every edge flipped. *)

val induced : t -> int list -> t * int array
(** [induced g ids] is the subgraph on [ids] (names and colors preserved,
    fresh dense ids) together with the mapping from new id to old id.
    @raise Invalid_argument on duplicate or out-of-range ids. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Compact one-line-per-node summary, for debugging. *)

val pp_node : t -> Format.formatter -> int -> unit
(** Prints the node's name. *)
