type t = char

let of_char c =
  if c > ' ' && c < '\x7f' && c <> '-' then c
  else invalid_arg (Printf.sprintf "Color.of_char: invalid color %C" c)

let to_char c = c
let to_string c = String.make 1 c
let compare = Char.compare
let equal = Char.equal
let hash = Char.code
let pp ppf c = Format.pp_print_char ppf c
let add = 'a'
let sub = 'b'
let mul = 'c'

let of_int k =
  if k >= 0 && k < 26 then Char.chr (Char.code 'a' + k)
  else if k >= 26 && k < 52 then Char.chr (Char.code 'A' + k - 26)
  else invalid_arg (Printf.sprintf "Color.of_int: %d out of [0,52)" k)

let to_index c =
  if c >= 'a' && c <= 'z' then Char.code c - Char.code 'a'
  else if c >= 'A' && c <= 'Z' then Char.code c - Char.code 'A' + 26
  else invalid_arg (Printf.sprintf "Color.to_index: non-alphabetic color %C" c)

module Set = Set.Make (Char)
module Map = Map.Make (Char)
