(** ASAP / ALAP / Height level analysis (paper §3, equations 1–3).

    For a node [n]:
    - [ASAP(n)] is 0 at sources, otherwise [max over preds (ASAP+1)] — the
      earliest clock cycle the node may occupy;
    - [ALAP(n)] is [ASAPmax] at sinks, otherwise [min over succs (ALAP−1)] —
      the latest cycle compatible with an [ASAPmax+1]-cycle schedule;
    - [Height(n)] is 1 at sinks, otherwise [max over succs (Height+1)] — the
      paper's priority ingredient (note the unusual base of 1, which we keep
      so Table 1 reproduces verbatim). *)

type t

val compute : Dfg.t -> t

val asap : t -> int -> int
val alap : t -> int -> int
val height : t -> int -> int

val asap_max : t -> int
(** [max over nodes of ASAP]; [-1] for the empty graph. *)

val mobility : t -> int -> int
(** [alap − asap ≥ 0]: the node's scheduling slack. *)

val critical : t -> int -> bool
(** Zero-mobility nodes. *)

val lower_bound_cycles : t -> int
(** [asap_max + 1]: minimum schedule length with unlimited resources
    (0 for the empty graph). *)

val span : t -> int list -> int
(** [span lv nodes] is the paper's Span of a node set (§5.1):
    [max 0 (max ASAP − min ALAP)].  @raise Invalid_argument on []. *)

val span_bound : t -> int list -> int
(** Theorem 1's lower bound on total schedule length if the given set is
    forced into a single cycle: [asap_max + span + 1]. *)

val pp_row : Dfg.t -> t -> Format.formatter -> int -> unit
(** "name asap alap height" — the shape of a Table 1 row. *)
