(** Textual DFG format: load and save graphs as plain files.

    The format is line-based:

    {v
    # comment (also after '#' on any line)
    node <name> <color-char>
    edge <src-name> <dst-name>
    v}

    Blank lines are ignored.  Nodes must be declared before edges mention
    them; node ids are assigned in declaration order, so a round-trip
    through {!to_string}/{!of_string} preserves ids. *)

exception Parse_error of { line : int; message : string }

val of_string : string -> Dfg.t
(** @raise Parse_error on malformed input.
    @raise Dfg.Cycle if the described graph is cyclic. *)

val to_string : Dfg.t -> string
(** Inverse of {!of_string} up to comments and whitespace. *)

val load : string -> Dfg.t
(** [load path] reads and parses a file.  @raise Sys_error on I/O failure,
    plus the [of_string] exceptions. *)

val save : string -> Dfg.t -> unit
