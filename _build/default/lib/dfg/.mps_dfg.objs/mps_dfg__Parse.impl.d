lib/dfg/parse.ml: Buffer Color Dfg Dot Fun Hashtbl List Printf String
