lib/dfg/topo.ml: Array Dfg Int List Mps_util
