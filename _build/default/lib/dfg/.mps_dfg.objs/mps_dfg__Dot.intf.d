lib/dfg/dot.mli: Dfg Levels
