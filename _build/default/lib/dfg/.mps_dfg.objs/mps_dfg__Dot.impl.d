lib/dfg/dot.ml: Buffer Color Dfg Fun Levels List Printf
