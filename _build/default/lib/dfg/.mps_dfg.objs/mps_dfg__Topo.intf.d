lib/dfg/topo.mli: Dfg
