lib/dfg/color.ml: Char Format Map Printf Set String
