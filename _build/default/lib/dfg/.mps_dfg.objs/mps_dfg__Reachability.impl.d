lib/dfg/reachability.ml: Array Dfg List Mps_util Printf Topo
