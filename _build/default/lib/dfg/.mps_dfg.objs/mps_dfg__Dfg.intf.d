lib/dfg/dfg.mli: Color Format
