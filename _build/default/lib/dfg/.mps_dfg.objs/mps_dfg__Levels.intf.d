lib/dfg/levels.mli: Dfg Format
