lib/dfg/levels.ml: Array Dfg Format List Printf Topo
