lib/dfg/dfg.ml: Array Color Format Fun Hashtbl Int List Option Printf Queue Set String
