lib/dfg/reachability.mli: Dfg Mps_util
