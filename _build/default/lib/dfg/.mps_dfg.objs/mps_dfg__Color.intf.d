lib/dfg/color.mli: Format Map Set
