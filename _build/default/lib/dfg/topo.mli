(** Topological orderings and path lengths over a {!Dfg.t}. *)

val order : Dfg.t -> int list
(** One topological order (Kahn, smallest-id-first among ready nodes, so the
    order is deterministic). *)

val is_order : Dfg.t -> int list -> bool
(** Whether the list is a permutation of the nodes consistent with every
    edge. *)

val longest_path_length : Dfg.t -> int
(** Number of {e nodes} on a longest directed path (0 for the empty graph).
    The paper's ASAPmax + 1, "the length of the longest path on the graph"
    (proof of Theorem 1). *)

val longest_path : Dfg.t -> int list
(** One longest path, as node ids in order ([] for the empty graph). *)
