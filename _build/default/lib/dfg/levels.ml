type t = { asap_arr : int array; alap_arr : int array; height_arr : int array; asap_max : int }

let compute g =
  let n = Dfg.node_count g in
  let asap_arr = Array.make n 0 in
  let height_arr = Array.make n 1 in
  let order = Topo.order g in
  (* ASAP propagates forward along the topological order... *)
  List.iter
    (fun i ->
      List.iter (fun p -> asap_arr.(i) <- max asap_arr.(i) (asap_arr.(p) + 1)) (Dfg.preds g i))
    order;
  let asap_max = Array.fold_left max (-1) asap_arr in
  (* ...ALAP and Height propagate backward. *)
  let alap_arr = Array.make n asap_max in
  List.iter
    (fun i ->
      List.iter
        (fun s ->
          alap_arr.(i) <- min alap_arr.(i) (alap_arr.(s) - 1);
          height_arr.(i) <- max height_arr.(i) (height_arr.(s) + 1))
        (Dfg.succs g i))
    (List.rev order);
  { asap_arr; alap_arr; height_arr; asap_max }

let get arr i =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Levels: node id %d out of range" i);
  arr.(i)

let asap t i = get t.asap_arr i
let alap t i = get t.alap_arr i
let height t i = get t.height_arr i
let asap_max t = t.asap_max
let mobility t i = alap t i - asap t i
let critical t i = mobility t i = 0
let lower_bound_cycles t = t.asap_max + 1

let span t nodes =
  match nodes with
  | [] -> invalid_arg "Levels.span: empty node set"
  | first :: rest ->
      let max_asap = List.fold_left (fun acc i -> max acc (asap t i)) (asap t first) rest in
      let min_alap = List.fold_left (fun acc i -> min acc (alap t i)) (alap t first) rest in
      max 0 (max_asap - min_alap)

let span_bound t nodes = t.asap_max + span t nodes + 1

let pp_row g t ppf i =
  Format.fprintf ppf "%s %d %d %d" (Dfg.name g i) (asap t i) (alap t i) (height t i)
