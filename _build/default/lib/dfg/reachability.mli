(** Transitive reachability and the parallelizability relation (paper §3).

    [n] is a {e follower} of [m] when a directed path leads from [m] to [n].
    Two nodes are {e parallelizable} when neither follows the other; a set of
    pairwise parallelizable nodes is an antichain.  This module materializes
    the relation as per-node bitsets so the antichain enumerator can test
    set-compatibility by intersection. *)

type t

val compute : Dfg.t -> t

val node_count : t -> int

val is_follower : t -> of_:int -> int -> bool
(** [is_follower r ~of_:m n]: is there a (non-empty) path from [m] to [n]? *)

val comparable : t -> int -> int -> bool
(** Either follows the other (false for [i = i]: a node is not a follower of
    itself unless the graph had a cycle, which [Dfg] excludes). *)

val parallelizable : t -> int -> int -> bool
(** [not (comparable r i j)] for distinct nodes; a node is {e not} considered
    parallelizable with itself (an antichain cannot contain it twice). *)

val descendants : t -> int -> Mps_util.Bitset.t
(** All followers of the node.  The returned bitset is shared internal
    state: treat it as read-only. *)

val ancestors : t -> int -> Mps_util.Bitset.t
(** All nodes the given node follows.  Read-only, as above. *)

val parallel_set : t -> int -> Mps_util.Bitset.t
(** All nodes parallelizable with the node (excludes the node itself).
    Read-only, as above. *)

val comparable_pairs : t -> int
(** Number of unordered comparable pairs — C(n,2) minus this is the count of
    size-2 antichains, the cross-check that pinned down the paper's Fig. 2
    graph (see DESIGN.md §2). *)

val is_antichain : t -> int list -> bool
(** Pairwise parallelizable and duplicate-free. *)
