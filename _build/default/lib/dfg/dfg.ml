type node = { id : int; name : string; color : Color.t }

type t = {
  node_list : node array;
  succ_arr : int array array;
  pred_arr : int array array;
  by_name : (string, int) Hashtbl.t;
  edge_count : int;
}

exception Cycle of string list

module Int_set = Set.Make (Int)

module Builder = struct
  type b_node = { b_name : string; b_color : Color.t; mutable b_succs : Int_set.t }

  type t = {
    mutable slots : b_node option array; (* doubling array, first [count] filled *)
    names : (string, int) Hashtbl.t;
    mutable count : int;
    mutable edges : int;
  }

  let create () = { slots = Array.make 16 None; names = Hashtbl.create 64; count = 0; edges = 0 }

  let add_node b ?name color =
    let id = b.count in
    let name =
      match name with
      | Some "" -> invalid_arg "Dfg.Builder.add_node: empty name"
      | Some n -> n
      | None -> Printf.sprintf "%s%d" (Color.to_string color) id
    in
    if Hashtbl.mem b.names name then
      invalid_arg (Printf.sprintf "Dfg.Builder.add_node: duplicate name %S" name);
    Hashtbl.add b.names name id;
    if id = Array.length b.slots then begin
      let grown = Array.make (2 * id) None in
      Array.blit b.slots 0 grown 0 id;
      b.slots <- grown
    end;
    b.slots.(id) <- Some { b_name = name; b_color = color; b_succs = Int_set.empty };
    b.count <- id + 1;
    id

  let node_exn b id =
    if id < 0 || id >= b.count then
      invalid_arg (Printf.sprintf "Dfg.Builder: unknown node id %d" id);
    match b.slots.(id) with
    | Some bn -> bn
    | None -> assert false

  let add_edge b src dst =
    if src = dst then
      invalid_arg (Printf.sprintf "Dfg.Builder.add_edge: self-loop on node %d" src);
    let s = node_exn b src in
    ignore (node_exn b dst);
    if not (Int_set.mem dst s.b_succs) then begin
      s.b_succs <- Int_set.add dst s.b_succs;
      b.edges <- b.edges + 1
    end

  (* Kahn's algorithm; on failure, extract one cycle by walking always-into
     the remaining (non-removable) subgraph. *)
  let check_acyclic nodes succ_arr =
    let n = Array.length nodes in
    let indeg = Array.make n 0 in
    Array.iter (fun succs -> Array.iter (fun d -> indeg.(d) <- indeg.(d) + 1) succs) succ_arr;
    let queue = Queue.create () in
    Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
    let removed = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr removed;
      Array.iter
        (fun d ->
          indeg.(d) <- indeg.(d) - 1;
          if indeg.(d) = 0 then Queue.add d queue)
        succ_arr.(i)
    done;
    if !removed <> n then begin
      (* Every remaining node has positive in-degree within the residue, so a
         walk along residual successors must revisit a node: that's a cycle. *)
      let in_residue i = indeg.(i) > 0 in
      let start =
        let rec find i = if in_residue i then i else find (i + 1) in
        find 0
      in
      let rec walk seen path i =
        if List.mem i seen then begin
          (* The walk revisited i: the cycle is the walked path from the
             first visit of i onward. *)
          let rec drop = function
            | [] -> []
            | j :: rest -> if j = i then j :: rest else drop rest
          in
          let cycle = drop (List.rev path) in
          raise (Cycle (List.map (fun j -> nodes.(j).name) cycle))
        end
        else
          let next =
            Array.to_list succ_arr.(i) |> List.find (fun d -> in_residue d)
          in
          walk (i :: seen) (i :: path) next
      in
      walk [] [] start
    end

  let build b =
    let n = b.count in
    let arr = Array.init n (fun i -> node_exn b i) in
    let node_list =
      Array.mapi (fun id bn -> { id; name = bn.b_name; color = bn.b_color }) arr
    in
    let succ_arr =
      Array.map (fun bn -> Array.of_list (Int_set.elements bn.b_succs)) arr
    in
    let pred_lists = Array.make n [] in
    (* Collect predecessors in decreasing source order so the final lists,
       built by cons, come out increasing. *)
    for src = n - 1 downto 0 do
      Array.iter (fun dst -> pred_lists.(dst) <- src :: pred_lists.(dst)) succ_arr.(src)
    done;
    let pred_arr = Array.map Array.of_list pred_lists in
    check_acyclic node_list succ_arr;
    let by_name = Hashtbl.copy b.names in
    { node_list; succ_arr; pred_arr; by_name; edge_count = b.edges }
end

let of_alist node_specs edge_specs =
  let b = Builder.create () in
  List.iter (fun (name, color) -> ignore (Builder.add_node b ~name color)) node_specs;
  let id_of name =
    match Hashtbl.find_opt b.Builder.names name with
    | Some id -> id
    | None -> invalid_arg (Printf.sprintf "Dfg.of_alist: unknown node %S in edge" name)
  in
  List.iter (fun (src, dst) -> Builder.add_edge b (id_of src) (id_of dst)) edge_specs;
  Builder.build b

let node_count g = Array.length g.node_list
let edge_count g = g.edge_count

let node g id =
  if id < 0 || id >= node_count g then
    invalid_arg (Printf.sprintf "Dfg: node id %d out of range" id);
  g.node_list.(id)

let name g id = (node g id).name
let color g id = (node g id).color
let find g n = Hashtbl.find g.by_name n
let find_opt g n = Hashtbl.find_opt g.by_name n

let succs g id =
  ignore (node g id);
  Array.to_list g.succ_arr.(id)

let preds g id =
  ignore (node g id);
  Array.to_list g.pred_arr.(id)

let out_degree g id =
  ignore (node g id);
  Array.length g.succ_arr.(id)

let in_degree g id =
  ignore (node g id);
  Array.length g.pred_arr.(id)

let nodes g = List.init (node_count g) Fun.id
let sources g = List.filter (fun i -> in_degree g i = 0) (nodes g)
let sinks g = List.filter (fun i -> out_degree g i = 0) (nodes g)

let edges g =
  List.concat_map (fun src -> List.map (fun dst -> (src, dst)) (succs g src)) (nodes g)

let iter_nodes f g = List.iter f (nodes g)
let fold_nodes f g acc = List.fold_left (fun acc i -> f i acc) acc (nodes g)
let iter_edges f g = List.iter (fun (s, d) -> f s d) (edges g)

let color_counts g =
  let m =
    fold_nodes
      (fun i m ->
        let c = color g i in
        Color.Map.update c (fun v -> Some (Option.value v ~default:0 + 1)) m)
      g Color.Map.empty
  in
  Color.Map.bindings m

let colors g = List.map fst (color_counts g)

let equal a b =
  node_count a = node_count b
  && edge_count a = edge_count b
  && List.for_all
       (fun i ->
         match find_opt b (name a i) with
         | None -> false
         | Some j ->
             let names g id = List.sort String.compare (List.map (name g) (succs g id)) in
             Color.equal (color a i) (color b j) && List.equal String.equal (names a i) (names b j))
       (nodes a)

let reverse g =
  let b = Builder.create () in
  iter_nodes (fun i -> ignore (Builder.add_node b ~name:(name g i) (color g i))) g;
  iter_edges (fun s d -> Builder.add_edge b d s) g;
  Builder.build b

let induced g ids =
  let n = node_count g in
  let seen = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Dfg.induced: id out of range";
      if seen.(i) then invalid_arg "Dfg.induced: duplicate id";
      seen.(i) <- true)
    ids;
  let old_ids = Array.of_list ids in
  let new_of_old = Array.make n (-1) in
  Array.iteri (fun ni oi -> new_of_old.(oi) <- ni) old_ids;
  let b = Builder.create () in
  Array.iter (fun oi -> ignore (Builder.add_node b ~name:(name g oi) (color g oi))) old_ids;
  iter_edges
    (fun s d ->
      if new_of_old.(s) >= 0 && new_of_old.(d) >= 0 then
        Builder.add_edge b new_of_old.(s) new_of_old.(d))
    g;
  (Builder.build b, old_ids)

let pp_node g ppf id = Format.pp_print_string ppf (name g id)

let pp ppf g =
  Format.fprintf ppf "@[<v>dfg: %d nodes, %d edges@," (node_count g) (edge_count g);
  iter_nodes
    (fun i ->
      Format.fprintf ppf "%s:%a -> [%a]@," (name g i) Color.pp (color g i)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (pp_node g))
        (succs g i))
    g;
  Format.fprintf ppf "@]"
