(** Operation colors.

    The paper (§3): "The type of the function of a node n is called a color
    of n, written l(n)."  In the running examples colors are single letters —
    'a' for addition, 'b' for subtraction, 'c' for multiplication — and a
    pattern is a bag of colors such as "aabcc".  We keep that concrete
    single-character representation (it makes every printed artifact match
    the paper) but expose the type abstractly so nothing outside this module
    relies on it. *)

type t

val of_char : char -> t
(** Accepts any printable, non-space character except the dummy marker '-'.
    @raise Invalid_argument otherwise. *)

val to_char : t -> char
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit

(** Conventional colors used by the Montium examples and the frontend. *)

val add : t (** 'a' *)

val sub : t (** 'b' *)

val mul : t (** 'c' *)

val of_int : int -> t
(** [of_int k] is the [k]-th color of the alphabet 'a','b',…,'z','A',… —
    handy for generated workloads with many operation types.
    @raise Invalid_argument if [k] is negative or past the 52-letter
    alphabet. *)

val to_index : t -> int
(** Inverse of [of_int] for alphabetic colors.
    @raise Invalid_argument for non-alphabetic colors. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
