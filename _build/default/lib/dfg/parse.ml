exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let of_string text =
  let b = Dfg.Builder.create () in
  let ids = Hashtbl.create 64 in
  let resolve lineno name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> fail lineno "unknown node %S in edge" name
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      match tokens (strip_comment raw) with
      | [] -> ()
      | [ "node"; name; color ] ->
          if String.length color <> 1 then
            fail lineno "color must be a single character, got %S" color;
          let color =
            try Color.of_char color.[0]
            with Invalid_argument m -> fail lineno "%s" m
          in
          let id =
            try Dfg.Builder.add_node b ~name color
            with Invalid_argument m -> fail lineno "%s" m
          in
          Hashtbl.add ids name id
      | [ "edge"; src; dst ] -> (
          try Dfg.Builder.add_edge b (resolve lineno src) (resolve lineno dst)
          with Invalid_argument m -> fail lineno "%s" m)
      | cmd :: _ -> fail lineno "unknown directive %S" cmd)
    lines;
  Dfg.Builder.build b

let to_string g =
  let buf = Buffer.create 256 in
  Dfg.iter_nodes
    (fun i ->
      Buffer.add_string buf
        (Printf.sprintf "node %s %s\n" (Dfg.name g i) (Color.to_string (Dfg.color g i))))
    g;
  Dfg.iter_edges
    (fun s d ->
      Buffer.add_string buf (Printf.sprintf "edge %s %s\n" (Dfg.name g s) (Dfg.name g d)))
    g;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path g = Dot.write_file ~path (to_string g)
