(* Min-heap of ready node ids keeps the produced order deterministic. *)
module Int_heap = Mps_util.Heap.Make (Int)

let order g =
  let n = Dfg.node_count g in
  let indeg = Array.init n (Dfg.in_degree g) in
  let ready = Int_heap.create () in
  Array.iteri (fun i d -> if d = 0 then Int_heap.add ready i) indeg;
  let rec drain acc =
    match Int_heap.pop ready with
    | None -> List.rev acc
    | Some i ->
        List.iter
          (fun j ->
            indeg.(j) <- indeg.(j) - 1;
            if indeg.(j) = 0 then Int_heap.add ready j)
          (Dfg.succs g i);
        drain (i :: acc)
  in
  let result = drain [] in
  assert (List.length result = n);
  result

let is_order g l =
  let n = Dfg.node_count g in
  if List.length l <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    List.iteri
      (fun p i ->
        if i < 0 || i >= n || pos.(i) >= 0 then ok := false else pos.(i) <- p)
      l;
    !ok
    && List.for_all
         (fun (s, d) -> pos.(s) < pos.(d))
         (Dfg.edges g)
  end

let longest_chain_to g =
  (* For each node, the max number of nodes on a path ending at it, plus the
     predecessor realizing it (-1 at path starts). *)
  let n = Dfg.node_count g in
  let len = Array.make n 1 in
  let via = Array.make n (-1) in
  List.iter
    (fun i ->
      List.iter
        (fun p ->
          if len.(p) + 1 > len.(i) then begin
            len.(i) <- len.(p) + 1;
            via.(i) <- p
          end)
        (Dfg.preds g i))
    (order g);
  (len, via)

let longest_path_length g =
  if Dfg.node_count g = 0 then 0
  else begin
    let len, _ = longest_chain_to g in
    Array.fold_left max 0 len
  end

let longest_path g =
  if Dfg.node_count g = 0 then []
  else begin
    let len, via = longest_chain_to g in
    let last = ref 0 in
    Array.iteri (fun i l -> if l > len.(!last) then last := i) len;
    let rec walk i acc = if i < 0 then acc else walk via.(i) (i :: acc) in
    walk !last []
  end
