let shape_of_color c =
  match Color.to_char c with
  | 'a' -> "ellipse"
  | 'b' -> "box"
  | 'c' -> "diamond"
  | _ -> "octagon"

let to_dot ?(graph_name = "dfg") ?levels ?(highlight = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" graph_name);
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  Dfg.iter_nodes
    (fun i ->
      let label =
        match levels with
        | None -> Dfg.name g i
        | Some lv ->
            Printf.sprintf "%s\\n%d/%d/h%d" (Dfg.name g i) (Levels.asap lv i)
              (Levels.alap lv i) (Levels.height lv i)
      in
      let fill = if List.mem i highlight then ", style=filled, fillcolor=lightgrey" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\", shape=%s%s];\n" (Dfg.name g i) label
           (shape_of_color (Dfg.color g i))
           fill))
    g;
  Dfg.iter_edges
    (fun s d ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" (Dfg.name g s) (Dfg.name g d)))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)
