(** Graphviz DOT export — regenerates the paper's Figures 2 and 4. *)

val to_dot :
  ?graph_name:string ->
  ?levels:Levels.t ->
  ?highlight:int list ->
  Dfg.t ->
  string
(** Renders the graph.  Nodes are labeled with their name; when [levels] is
    given the label gains an "asap/alap/h" second line (the content of
    Table 1); [highlight] nodes are drawn filled.  Colors map to node shapes
    so the three paper colors are visually distinct: 'a' ellipse, 'b' box,
    'c' diamond, anything else octagon. *)

val write_file : path:string -> string -> unit
(** Writes rendered DOT (or any text) to [path], creating/truncating it. *)
