module Bitset = Mps_util.Bitset

type t = {
  desc : Bitset.t array;
  anc : Bitset.t array;
  par : Bitset.t array;
}

let compute g =
  let n = Dfg.node_count g in
  let desc = Array.init n (fun _ -> Bitset.create n) in
  let anc = Array.init n (fun _ -> Bitset.create n) in
  let order = Topo.order g in
  (* desc(i) = union over successors s of ({s} ∪ desc(s)), reverse topo. *)
  List.iter
    (fun i ->
      List.iter
        (fun s ->
          Bitset.add desc.(i) s;
          Bitset.union_into ~dst:desc.(i) desc.(s))
        (Dfg.succs g i))
    (List.rev order);
  for i = 0 to n - 1 do
    Bitset.iter (fun j -> Bitset.add anc.(j) i) desc.(i)
  done;
  let par =
    Array.init n (fun i ->
        let p = Bitset.full n in
        Bitset.diff_into ~dst:p desc.(i);
        Bitset.diff_into ~dst:p anc.(i);
        Bitset.remove p i;
        p)
  in
  { desc; anc; par }

let node_count t = Array.length t.desc

let check t i =
  if i < 0 || i >= node_count t then
    invalid_arg (Printf.sprintf "Reachability: node id %d out of range" i)

let is_follower t ~of_ n =
  check t of_;
  Bitset.mem t.desc.(of_) n

let comparable t i j =
  check t i;
  is_follower t ~of_:i j || is_follower t ~of_:j i

let parallelizable t i j =
  check t i;
  check t j;
  i <> j && not (comparable t i j)

let descendants t i =
  check t i;
  t.desc.(i)

let ancestors t i =
  check t i;
  t.anc.(i)

let parallel_set t i =
  check t i;
  t.par.(i)

let comparable_pairs t =
  Array.fold_left (fun acc d -> acc + Bitset.cardinal d) 0 t.desc

let is_antichain t nodes =
  let rec no_dup = function
    | [] -> true
    | x :: rest -> (not (List.mem x rest)) && no_dup rest
  in
  no_dup nodes
  && List.for_all
       (fun i -> List.for_all (fun j -> i = j || parallelizable t i j) nodes)
       nodes
