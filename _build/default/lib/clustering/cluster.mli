(** Clustering — the compiler phase before scheduling in the Montium flow
    (paper §1; the four-phase approach of its reference [3]).

    A Montium ALU can chain its function units within one clock cycle, so a
    multiplication whose only consumer is an addition or subtraction can
    execute fused as a single multiply-accumulate.  Clustering rewrites the
    DFG accordingly: each fused pair becomes one node of a fresh color, the
    graph shrinks, and the scheduler sees MAC as just another color in its
    patterns — no other phase needs to know.

    Contracting the edge u→v is sound exactly because u's unique successor
    is v: no alternative u→…→v path can exist, so the result stays a DAG. *)

type t = {
  clustered : Mps_dfg.Dfg.t;  (** The rewritten graph. *)
  members : int list array;
      (** Per clustered node: original node ids, dataflow order. *)
  of_original : int array;  (** Original node id → clustered node id. *)
}

val mac_color : Mps_dfg.Color.t
(** 'm', the color given to fused multiply-accumulate clusters. *)

val identity : Mps_dfg.Dfg.t -> t
(** Every node its own cluster — the do-nothing phase, for pipelines that
    skip clustering uniformly. *)

val mac : Mps_dfg.Dfg.t -> t
(** Greedily fuses every multiplication ('c') whose unique successor is an
    addition or subtraction ('a'/'b') into a {!mac_color} node, earliest
    (smallest id) multiplications first; a consumer absorbs at most one
    multiplication.  Nodes keep their names; a fused pair is named
    ["mul+add"] style: the two original names joined by ['+']. *)

val cluster_count : t -> int
val fused_pairs : t -> int
(** Number of two-member clusters. *)

val pp : Format.formatter -> t -> unit
