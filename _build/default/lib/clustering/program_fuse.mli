(** MAC fusion at the program level — clustering that stays executable.

    {!Cluster.mac} fuses multiply→add/sub pairs in a bare DFG, which is
    enough for scheduling studies but loses the operand semantics the
    allocation/simulation path needs.  This pass performs the same fusion
    on a {!Mps_frontend.Program.t}, rewriting each fusable pair into one
    {!Mps_frontend.Opcode.Mac} instruction (x·y + z), so the fused program
    still lowers onto the tile, simulates, and generates code.

    Conservatively, only multiply→{e addition} pairs fuse (subtraction
    consumers would need a multiply-subtract opcode; the DFG-level pass may
    therefore fuse more).  Float semantics are preserved exactly: Mac
    evaluates x·y + z with the same two operations in the same order. *)

val fuse : Mps_frontend.Program.t -> Mps_frontend.Program.t
(** Greedy, earliest multiplication first; each addition absorbs at most
    one multiplication; outputs produced by an absorbed node are remapped
    to the fused instruction. *)

val fused_count : before:Mps_frontend.Program.t -> after:Mps_frontend.Program.t -> int
(** Convenience: how many pairs disappeared. *)
