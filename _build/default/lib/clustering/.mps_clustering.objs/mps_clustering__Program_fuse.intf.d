lib/clustering/program_fuse.mli: Mps_frontend
