lib/clustering/cluster.ml: Array Format List Mps_dfg String
