lib/clustering/cluster.mli: Format Mps_dfg
