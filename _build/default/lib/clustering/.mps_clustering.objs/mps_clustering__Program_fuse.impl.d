lib/clustering/program_fuse.ml: Array Cluster List Mps_dfg Mps_frontend
