module Dfg = Mps_dfg.Dfg
module Program = Mps_frontend.Program
module Opcode = Mps_frontend.Opcode

let fuse program =
  let g = Program.dfg program in
  let n = Dfg.node_count g in
  let output_nodes = List.map snd (Program.outputs program) in
  (* absorbed.(u) = consumer add that swallows multiplication u. *)
  let absorbed_into = Array.make n (-1) in
  let absorbs = Array.make n (-1) in
  Dfg.iter_nodes
    (fun u ->
      let { Program.opcode; _ } = Program.instruction program u in
      if opcode = Opcode.Mul && not (List.mem u output_nodes) then
        match Dfg.succs g u with
        | [ v ] ->
            let vi = Program.instruction program v in
            let reads_u_once =
              Array.to_list vi.Program.operands
              |> List.filter (function Program.Node j -> j = u | _ -> false)
              |> List.length = 1
            in
            if vi.Program.opcode = Opcode.Add && absorbs.(v) = -1 && reads_u_once
            then begin
              absorbs.(v) <- u;
              absorbed_into.(u) <- v
            end
        | _ -> ())
    g;
  (* Rebuild: every non-absorbed node keeps its (renumbered) place. *)
  let builder = Dfg.Builder.create () in
  let new_of_old = Array.make n (-1) in
  Dfg.iter_nodes
    (fun i ->
      if absorbed_into.(i) < 0 then begin
        let name =
          if absorbs.(i) >= 0 then Dfg.name g absorbs.(i) ^ "+" ^ Dfg.name g i
          else Dfg.name g i
        in
        let color =
          if absorbs.(i) >= 0 then Cluster.mac_color else Dfg.color g i
        in
        new_of_old.(i) <- Dfg.Builder.add_node builder ~name color
      end)
    g;
  let map_operand = function
    | Program.Node j when absorbed_into.(j) >= 0 ->
        (* Only the absorbing add references an absorbed node, and that
           reference disappears inside the Mac. *)
        assert false
    | Program.Node j -> Program.Node new_of_old.(j)
    | other -> other
  in
  let instructions = ref [] in
  Dfg.iter_nodes
    (fun i ->
      if absorbed_into.(i) < 0 then begin
        let { Program.opcode; operands } = Program.instruction program i in
        let instr =
          if absorbs.(i) >= 0 then begin
            let u = absorbs.(i) in
            let mul = Program.instruction program u in
            let z =
              (* The add's operand that is not the absorbed multiply. *)
              let rec find k =
                match operands.(k) with
                | Program.Node j when j = u -> find_other k
                | _ -> find (k + 1)
              and find_other skip =
                let other = if skip = 0 then 1 else 0 in
                operands.(other)
              in
              find 0
            in
            {
              Program.opcode = Opcode.Mac;
              operands =
                [| map_operand mul.Program.operands.(0);
                   map_operand mul.Program.operands.(1);
                   map_operand z;
                |];
            }
          end
          else { Program.opcode; operands = Array.map map_operand operands }
        in
        (* Edges for the rebuilt node. *)
        Array.iter
          (function
            | Program.Node j -> Dfg.Builder.add_edge builder j new_of_old.(i)
            | Program.Input _ | Program.Literal _ -> ())
          instr.Program.operands;
        instructions := instr :: !instructions
      end)
    g;
  let dfg = Dfg.Builder.build builder in
  let outputs =
    List.map (fun (name, i) -> (name, new_of_old.(i))) (Program.outputs program)
  in
  Program.make ~dfg ~instructions:(Array.of_list (List.rev !instructions)) ~outputs

let fused_count ~before ~after =
  Dfg.node_count (Program.dfg before) - Dfg.node_count (Program.dfg after)
