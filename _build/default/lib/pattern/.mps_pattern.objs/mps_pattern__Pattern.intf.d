lib/pattern/pattern.mli: Format Map Mps_dfg Mps_util Set
