lib/pattern/pattern.ml: Array Buffer Format Hashtbl List Map Mps_dfg Mps_util Printf Set String
