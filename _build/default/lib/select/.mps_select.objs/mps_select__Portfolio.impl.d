lib/select/portfolio.ml: Annealing Beam Greedy_cover List Mps_antichain Mps_pattern Mps_scheduler Pattern_source Priority_variants Select
