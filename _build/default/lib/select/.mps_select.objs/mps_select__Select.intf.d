lib/select/select.mli: Mps_antichain Mps_dfg Mps_pattern
