lib/select/exhaustive.mli: Mps_antichain Mps_pattern Mps_scheduler
