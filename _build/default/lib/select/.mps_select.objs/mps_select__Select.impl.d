lib/select/select.ml: Array List Mps_antichain Mps_dfg Mps_pattern
