lib/select/exhaustive.ml: Array List Mps_antichain Mps_dfg Mps_pattern Mps_scheduler Option
