lib/select/shared.mli: Mps_antichain Mps_dfg Mps_pattern Select
