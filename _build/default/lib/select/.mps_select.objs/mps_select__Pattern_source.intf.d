lib/select/pattern_source.mli: Mps_dfg Mps_pattern
