lib/select/priority_variants.mli: Mps_antichain Mps_pattern
