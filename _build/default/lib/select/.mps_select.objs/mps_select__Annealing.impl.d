lib/select/annealing.ml: Array List Mps_antichain Mps_dfg Mps_pattern Mps_scheduler Mps_util Select
