lib/select/annealing.mli: Mps_antichain Mps_pattern Mps_util
