lib/select/priority_variants.ml: Array List Mps_antichain Mps_dfg Mps_pattern
