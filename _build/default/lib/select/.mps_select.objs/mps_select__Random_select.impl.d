lib/select/random_select.ml: List Mps_dfg Mps_pattern Mps_util
