lib/select/greedy_cover.mli: Mps_antichain Mps_pattern
