lib/select/beam.mli: Mps_antichain Mps_pattern Select
