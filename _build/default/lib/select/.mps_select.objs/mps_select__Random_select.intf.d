lib/select/random_select.mli: Mps_dfg Mps_pattern Mps_util
