lib/select/greedy_cover.ml: List Mps_antichain Mps_dfg Mps_pattern
