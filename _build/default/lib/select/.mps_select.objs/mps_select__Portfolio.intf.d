lib/select/portfolio.mli: Mps_antichain Mps_pattern Mps_util
