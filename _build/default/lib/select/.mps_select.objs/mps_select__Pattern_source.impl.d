lib/select/pattern_source.ml: List Mps_dfg Mps_pattern Mps_scheduler Option
