(** The paper's baseline: randomly generated pattern sets (§6, Table 7's
    "Random" columns — averages over ten draws).

    Each pattern fills all C slots with independently uniform colors from
    the graph's color set.  A set that misses some color entirely would make
    multi-pattern scheduling impossible (the paper's runs evidently never
    hit this), so by default a draw is rejected and retried until the set
    jointly covers every color; with the paper's three colors and C = 5 the
    expected number of retries is well under two. *)

val select :
  ?ensure_coverage:bool ->
  Mps_util.Rng.t ->
  colors:Mps_dfg.Color.t list ->
  capacity:int ->
  pdef:int ->
  Mps_pattern.Pattern.t list
(** [ensure_coverage] defaults to [true].
    @raise Invalid_argument if [colors] is empty, [capacity < 1],
    [pdef < 1], or coverage is requested but impossible
    ([capacity·pdef < number of distinct colors]). *)

val trials :
  ?ensure_coverage:bool ->
  Mps_util.Rng.t ->
  runs:int ->
  colors:Mps_dfg.Color.t list ->
  capacity:int ->
  pdef:int ->
  Mps_pattern.Pattern.t list list
(** [runs] independent draws — the "tested ten times" protocol. *)
