module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify
module Mp = Mps_scheduler.Multi_pattern
module Schedule = Mps_scheduler.Schedule

type outcome = {
  patterns : Pattern.t list;
  cycles : int;
  evaluated_sets : int;
}

(* One partial selection: chosen patterns (reversed), accumulated per-node
   coverage, covered colors, surviving pool, and the heuristic score that
   ranks beams (sum of the Eq. 8 priorities of its picks). *)
type state = {
  chosen : Pattern.t list;
  cover : int array;
  covered : Color.Set.t;
  pool : (Pattern.t * int array) list;
  heuristic : float;
}

let priority ~params ~cover ~freq ~size =
  let open Select in
  let acc = ref 0.0 in
  Array.iteri
    (fun n h ->
      if h > 0 then
        acc := !acc +. (float_of_int h /. (float_of_int cover.(n) +. params.epsilon)))
    freq;
  !acc +. (params.alpha *. float_of_int (size * size))

let search ?(width = 4) ?(params = Select.default_params) ~pdef classify =
  if pdef < 1 then invalid_arg "Beam.search: pdef must be >= 1";
  if width < 1 then invalid_arg "Beam.search: width must be >= 1";
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let n = Dfg.node_count g in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let initial =
    {
      chosen = [];
      cover = Array.make n 0;
      covered = Color.Set.empty;
      pool =
        Classify.fold (fun p ~count:_ ~freq acc -> (p, freq) :: acc) classify []
        |> List.rev;
      heuristic = 0.0;
    }
  in
  let extend step state =
    let remaining_picks = pdef - step - 1 in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors state.covered) in
    let color_condition p =
      let new_colors =
        Color.Set.cardinal (Color.Set.diff (Pattern.color_set p) state.covered)
      in
      new_colors >= missing - (capacity * remaining_picks)
    in
    let apply p freq score =
      let cover = Array.copy state.cover in
      Array.iteri (fun k h -> cover.(k) <- cover.(k) + h) freq;
      {
        chosen = p :: state.chosen;
        cover;
        covered = Color.Set.union state.covered (Pattern.color_set p);
        pool =
          List.filter (fun (q, _) -> not (Pattern.subpattern q ~of_:p)) state.pool;
        heuristic = state.heuristic +. score;
      }
    in
    let scored =
      List.filter_map
        (fun (p, freq) ->
          if color_condition p then
            let s =
              priority ~params ~cover:state.cover ~freq ~size:(Pattern.size p)
            in
            Some (s, p, freq)
          else None)
        state.pool
    in
    match scored with
    | [] ->
        (* Fallback, exactly as Fig. 7: fabricate from uncovered colors. *)
        let uncovered = Color.Set.elements (Color.Set.diff all_colors state.covered) in
        if uncovered = [] then [ { state with chosen = state.chosen } ]
        else begin
          let rec take k = function
            | [] -> []
            | _ when k = 0 -> []
            | x :: rest -> x :: take (k - 1) rest
          in
          let p = Pattern.of_colors (take capacity uncovered) in
          [ apply p (Array.make n 0) 0.0 ]
        end
    | _ ->
        List.sort (fun (s1, _, _) (s2, _, _) -> compare s2 s1) scored
        |> List.filteri (fun i _ -> i < width)
        |> List.map (fun (s, p, freq) -> apply p freq s)
  in
  let rec steps i beam =
    if i = pdef then beam
    else begin
      let expanded = List.concat_map (extend i) beam in
      (* Keep the [width] most promising partial selections; dedupe on the
         chosen multiset so permutations don't crowd the beam. *)
      let key st = List.sort Pattern.compare st.chosen in
      let deduped =
        List.sort_uniq (fun a b -> compare (key a) (key b)) expanded
      in
      let ranked =
        List.sort (fun a b -> compare b.heuristic a.heuristic) deduped
      in
      steps (i + 1) (List.filteri (fun k _ -> k < width) ranked)
    end
  in
  let finalists = steps 0 [ initial ] in
  let evaluated = ref 0 in
  let best =
    List.fold_left
      (fun acc state ->
        let patterns = List.rev state.chosen in
        if patterns = [] then acc
        else begin
          match Mp.schedule ~patterns g with
          | exception Mp.Unschedulable _ -> acc
          | { Mp.schedule; _ } -> (
              incr evaluated;
              let c = Schedule.cycles schedule in
              match acc with
              | Some (_, bc) when bc <= c -> acc
              | _ -> Some (patterns, c))
        end)
      None finalists
  in
  match best with
  | Some (patterns, cycles) -> { patterns; cycles; evaluated_sets = !evaluated }
  | None ->
      (* Only possible when every finalist was empty/unschedulable; fall
         back to the paper's heuristic, which guarantees coverage. *)
      let patterns = Select.select ~params ~pdef classify in
      let cycles = Schedule.cycles (Mp.schedule ~patterns g).Mp.schedule in
      { patterns; cycles; evaluated_sets = !evaluated + 1 }
