(** Schedule-derived pattern sets — a pragmatic alternative source of
    patterns for the ablation study.

    Instead of enumerating antichains, run a pattern-free scheduler (greedy
    capacity-only list scheduling, or force-directed scheduling) and harvest
    the per-cycle color bags it produced; the [pdef] most frequent bags,
    completed for color coverage, become the allowed patterns.  This is the
    "just look at one good schedule" strawman the paper's antichain
    machinery implicitly competes with. *)

type method_ = Greedy | Force_directed

val harvest :
  method_:method_ ->
  capacity:int ->
  pdef:int ->
  Mps_dfg.Dfg.t ->
  Mps_pattern.Pattern.t list
(** At most [pdef] patterns covering all graph colors.
    @raise Invalid_argument if [pdef < 1] or [capacity < 1]. *)
