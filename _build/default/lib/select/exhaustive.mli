(** Exhaustive pattern-set oracle for small instances.

    Enumerates every way of choosing [pdef] patterns from the candidate
    pool (plus, when needed, fabricated coverage patterns), schedules the
    graph under each set, and returns a set minimizing the cycle count.
    Exponential in [pdef] over the pool size — use it to measure how close
    the heuristic selection lands to optimal on graphs like the paper's
    examples, never on large graphs.  [max_sets] caps the number of
    evaluated combinations as a safety net. *)

type outcome = {
  best : Mps_pattern.Pattern.t list;
  best_cycles : int;
  evaluated : int;
  truncated : bool;  (** [max_sets] hit: the optimum may lie beyond. *)
}

val search :
  ?priority:Mps_scheduler.Multi_pattern.pattern_priority ->
  ?max_sets:int ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  outcome
(** [max_sets] defaults to 200_000.  Candidate sets that do not jointly
    cover the graph's colors are completed with one fabricated pattern of
    uncovered colors when a slot is free, else skipped.
    @raise Invalid_argument if [pdef < 1]. *)
