(** Beam-search pattern selection.

    {!Select} commits to the single best pattern at every step (beam width
    1); {!Exhaustive} keeps everything (unbounded beam).  This module is
    the dial between them: at each of the [pdef] steps it keeps the [width]
    best partial selections, scoring each candidate extension by Eq. 8's
    priority, and finally ranks the surviving complete sets by their actual
    schedule length.  Width 1 reproduces the paper's algorithm (up to
    final-schedule tie-breaking); modest widths recover most of the
    exhaustive oracle's advantage at a tiny fraction of its cost. *)

type outcome = {
  patterns : Mps_pattern.Pattern.t list;
  cycles : int;
  evaluated_sets : int;  (** Complete sets scheduled at the final ranking. *)
}

val search :
  ?width:int ->
  ?params:Select.params ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  outcome
(** [width] defaults to 4.
    @raise Invalid_argument if [pdef < 1] or [width < 1]. *)
