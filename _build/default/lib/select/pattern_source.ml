module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Schedule = Mps_scheduler.Schedule

type method_ = Greedy | Force_directed

let harvest ~method_ ~capacity ~pdef g =
  if pdef < 1 then invalid_arg "Pattern_source.harvest: pdef < 1";
  if capacity < 1 then invalid_arg "Pattern_source.harvest: capacity < 1";
  let sched =
    match method_ with
    | Greedy -> Mps_scheduler.Reference.greedy_capacity ~capacity g
    | Force_directed -> Mps_scheduler.Force_directed.schedule ~capacity g
  in
  (* Count how often each per-cycle bag occurs. *)
  let counts = ref Pattern.Map.empty in
  for c = 0 to Schedule.cycles sched - 1 do
    let bag = Schedule.used_at g sched c in
    if Pattern.size bag > 0 then
      counts :=
        Pattern.Map.update bag
          (fun v -> Some (Option.value v ~default:0 + 1))
          !counts
  done;
  let ranked =
    Pattern.Map.bindings !counts
    |> List.sort (fun (p1, c1) (p2, c2) ->
           match compare c2 c1 with 0 -> Pattern.compare p1 p2 | c -> c)
    |> List.map fst
  in
  (* Keep the most frequent bags, dropping any that is a subpattern of an
     already kept one; reserve the last slot for coverage if needed. *)
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let rec pick kept covered n = function
    | [] -> (List.rev kept, covered)
    | p :: rest ->
        if n = 0 then (List.rev kept, covered)
        else if List.exists (fun q -> Pattern.subpattern p ~of_:q) kept then
          pick kept covered n rest
        else
          pick (p :: kept) (Color.Set.union covered (Pattern.color_set p)) (n - 1) rest
  in
  let budget =
    (* Leave one slot free when the frequent bags cannot cover the colors. *)
    let covered_by k =
      List.fold_left
        (fun acc p -> Color.Set.union acc (Pattern.color_set p))
        Color.Set.empty
        (List.filteri (fun i _ -> i < k) ranked)
    in
    if Color.Set.subset all_colors (covered_by pdef) then pdef else max 1 (pdef - 1)
  in
  let kept, covered = pick [] Color.Set.empty budget ranked in
  let uncovered = Color.Set.elements (Color.Set.diff all_colors covered) in
  if uncovered = [] then kept
  else
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    kept @ [ Pattern.of_colors (take capacity uncovered) ]
