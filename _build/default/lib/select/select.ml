module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify

type params = { epsilon : float; alpha : float }

let default_params = { epsilon = 0.5; alpha = 20.0 }

type step = {
  chosen : Pattern.t;
  priority : float;
  fallback : bool;
  deleted : Pattern.t list;
  priorities : (Pattern.t * float) list;
}

type report = { patterns : Pattern.t list; steps : step list }

let covers_all_colors g patterns =
  let covered =
    List.fold_left
      (fun acc p -> Color.Set.union acc (Pattern.color_set p))
      Color.Set.empty patterns
  in
  List.for_all (fun c -> Color.Set.mem c covered) (Dfg.colors g)

let priority_of ~params ~cover ~freq ~size_ =
  let balance = ref 0.0 in
  Array.iteri
    (fun n h ->
      if h > 0 then
        balance := !balance +. (float_of_int h /. (float_of_int cover.(n) +. params.epsilon)))
    freq;
  !balance +. (params.alpha *. float_of_int (size_ * size_))

let select_report ?(params = default_params) ~pdef classify =
  if pdef < 1 then invalid_arg "Select.select: pdef must be >= 1";
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let n = Dfg.node_count g in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  (* Candidate pool: every pattern with at least one antichain, each with its
     (immutable) frequency vector. *)
  let pool =
    ref
      (Classify.fold
         (fun p ~count:_ ~freq acc -> (p, freq) :: acc)
         classify []
      |> List.rev)
  in
  let cover = Array.make n 0 in
  let covered = ref Color.Set.empty in
  let steps = ref [] in
  let selected = ref [] in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < pdef do
    let remaining_picks = pdef - !i - 1 in
    let missing = Color.Set.cardinal (Color.Set.diff all_colors !covered) in
    let color_condition p =
      let new_colors =
        Color.Set.cardinal (Color.Set.diff (Pattern.color_set p) !covered)
      in
      new_colors >= missing - (capacity * remaining_picks)
    in
    let scored =
      List.map
        (fun (p, freq) ->
          let f =
            if color_condition p then
              priority_of ~params ~cover ~freq ~size_:(Pattern.size p)
            else 0.0
          in
          (p, freq, f))
        !pool
    in
    let best =
      List.fold_left
        (fun acc (p, freq, f) ->
          match acc with
          | Some (_, _, bf) when bf >= f -> acc
          | _ when f > 0.0 -> Some (p, freq, f)
          | _ -> acc)
        None scored
    in
    let priorities = List.map (fun (p, _, f) -> (p, f)) scored in
    (match best with
    | Some (p, freq, f) ->
        let deleted, kept =
          List.partition (fun (q, _) -> Pattern.subpattern q ~of_:p) !pool
        in
        pool := kept;
        Array.iteri (fun k h -> cover.(k) <- cover.(k) + h) freq;
        covered := Color.Set.union !covered (Pattern.color_set p);
        selected := p :: !selected;
        steps :=
          { chosen = p; priority = f; fallback = false; deleted = List.map fst deleted; priorities }
          :: !steps
    | None ->
        (* No candidate works: fabricate from uncovered colors (up to C).
           With nothing uncovered and an empty viable pool, more patterns
           cannot help; stop early. *)
        let uncovered = Color.Set.elements (Color.Set.diff all_colors !covered) in
        if uncovered = [] then stop := true
        else begin
          let rec take k = function
            | [] -> []
            | _ when k = 0 -> []
            | x :: rest -> x :: take (k - 1) rest
          in
          let p = Pattern.of_colors (take capacity uncovered) in
          let deleted, kept =
            List.partition (fun (q, _) -> Pattern.subpattern q ~of_:p) !pool
          in
          pool := kept;
          covered := Color.Set.union !covered (Pattern.color_set p);
          selected := p :: !selected;
          steps :=
            { chosen = p; priority = 0.0; fallback = true; deleted = List.map fst deleted; priorities }
            :: !steps
        end);
    incr i
  done;
  { patterns = List.rev !selected; steps = List.rev !steps }

let select ?params ~pdef classify = (select_report ?params ~pdef classify).patterns
