(** Shared pattern selection across several kernels.

    A real application runs more than one kernel on the tile — an FFT, a
    filter, a correlator — and they all draw from the {e same} 32-entry
    configuration table (paper §1).  This module extends Fig. 7 to that
    setting: one pattern set serving a whole kernel suite.

    The priority of a candidate generalizes Eq. 8 by summing the balancing
    term over every kernel (each kernel keeps its own coverage vector, so a
    pattern that only helps kernels that are already well covered scores
    low), and the color-number condition runs against the union of the
    kernels' color sets.  Selection never looks at schedule lengths — like
    the paper's algorithm it is purely structural — so it stays cheap even
    for many kernels. *)

type kernel = {
  label : string;
  graph : Mps_dfg.Dfg.t;
  classify : Mps_antichain.Classify.t;
}

val kernel :
  ?span_limit:int ->
  ?budget:int ->
  ?capacity:int ->
  label:string ->
  Mps_dfg.Dfg.t ->
  kernel
(** Convenience constructor; [capacity] defaults to 5.
    @raise Invalid_argument if the capacities of kernels later mixed in
    [select] disagree (checked there). *)

type outcome = {
  patterns : Mps_pattern.Pattern.t list;
  per_kernel_cycles : (string * int) list;
      (** Multi-pattern schedule length of each kernel under the shared
          set, in input order. *)
  total_cycles : int;
}

val select :
  ?params:Select.params -> pdef:int -> kernel list -> outcome
(** @raise Invalid_argument if the list is empty, [pdef < 1], or the
    kernels' capacities differ. *)
