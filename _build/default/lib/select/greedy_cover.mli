(** Greedy frequency baseline, an ablation of the selection priority.

    It keeps Fig. 7's skeleton — pick, delete subpatterns, color-condition
    fallback — but scores a candidate by its raw antichain count F1-style
    instead of Eq. 8: no per-node balancing denominator, no α size bonus.
    Comparing it against {!Select} isolates how much those two terms buy. *)

val select :
  pdef:int -> Mps_antichain.Classify.t -> Mps_pattern.Pattern.t list
(** @raise Invalid_argument if [pdef < 1]. *)
