(** Alternative selection priority functions.

    The paper closes with: "The proposed approach makes the further
    improvement very simple: by just modifying the priority function.  In
    our future work we will go on working on the priority function."  This
    module is that experiment, kept apart from the faithful {!Select} so
    the reproduction stays pristine.  A variant scores a candidate pattern
    given the per-node antichain frequencies and the coverage accumulated
    by earlier picks; {!select} runs Fig. 7's loop (color condition,
    subpattern deletion, fallback) with any variant plugged in. *)

type context = {
  freq : int array;  (** h(p̄,·) of the candidate, indexed by node. *)
  count : int;  (** Number of antichains of the candidate. *)
  cover : int array;  (** Σ over selected patterns of h(p̄i,·). *)
  size : int;  (** |p̄|. *)
  capacity : int;
}

type variant = {
  name : string;
  doc : string;
  score : context -> float;
}

val paper : variant
(** Eq. 8 with the paper's ε = 0.5, α = 20 — the reference point. *)

val linear_size : variant
(** Eq. 8 with α·|p̄| instead of α·|p̄|² — how much does the quadratic
    size bonus matter? *)

val raw_count : variant
(** Antichain count plus the size bonus; no per-node balancing. *)

val coverage_gap : variant
(** Scores only nodes still uncovered (cover = 0) — a set-cover reading of
    the problem. *)

val sqrt_damping : variant
(** Balancing via 1/sqrt(cover+ε) — gentler damping than Eq. 8's 1/x. *)

val all : variant list

val select :
  variant -> pdef:int -> Mps_antichain.Classify.t -> Mps_pattern.Pattern.t list
(** Fig. 7's loop with the variant's score.  Same guarantees as
    {!Select.select}: covers every color, at most [pdef] patterns.
    @raise Invalid_argument if [pdef < 1]. *)
