(** The pattern selection algorithm — the paper's contribution (§5.2, Fig. 7).

    Patterns are chosen one at a time.  The priority of a candidate pattern
    p̄j given the already-selected set Ps is (Eq. 8)

    f(p̄j) = Σ_n  h(p̄j,n) / (Σ_{p̄i∈Ps} h(p̄i,n) + ε)  +  α·|p̄j|²

    when p̄j satisfies the color-number condition (Eq. 9)

    |Ln(p̄j)| ≥ |L| − |Ls| − C·(Pdef − |Ps| − 1)

    and 0 otherwise.  The first addend prefers patterns with many antichains
    while damping nodes the earlier selections already cover; the α term
    prefers larger patterns; the color condition keeps enough room in the
    remaining picks that every color of the graph ends up covered.  When no
    candidate has nonzero priority, a pattern is fabricated from uncovered
    colors (Fig. 7, line 3).  After each selection the chosen pattern's
    subpatterns are deleted from the candidate pool (line 4). *)

type params = { epsilon : float; alpha : float }

val default_params : params
(** The paper's operating point: ε = 0.5, α = 20. *)

type step = {
  chosen : Mps_pattern.Pattern.t;
  priority : float;  (** f at selection time; meaningless for fallbacks. *)
  fallback : bool;  (** Fabricated from uncovered colors. *)
  deleted : Mps_pattern.Pattern.t list;
      (** Candidate subpatterns removed by this selection (the pattern
          itself included when it was a candidate). *)
  priorities : (Mps_pattern.Pattern.t * float) list;
      (** The full scored candidate list at this step, selection order —
          the numbers the paper walks through in §5.2. *)
}

type report = {
  patterns : Mps_pattern.Pattern.t list;  (** In selection order. *)
  steps : step list;
}

val select :
  ?params:params -> pdef:int -> Mps_antichain.Classify.t -> Mps_pattern.Pattern.t list
(** Selects up to [pdef] patterns.  Fewer are returned only when the
    candidate pool empties and every color is already covered — then extra
    patterns could not change any schedule.
    @raise Invalid_argument if [pdef < 1]. *)

val select_report :
  ?params:params -> pdef:int -> Mps_antichain.Classify.t -> report
(** Same, keeping the per-step evidence. *)

val covers_all_colors : Mps_dfg.Dfg.t -> Mps_pattern.Pattern.t list -> bool
(** Requirement 1 of §5: the selected patterns jointly cover every color in
    the graph — guaranteed for [select]'s result, and the property that
    makes multi-pattern scheduling total. *)
