(** Simulated-annealing pattern-set search.

    Sits between the paper's one-pass heuristic ({!Select}) and the
    exhaustive oracle ({!Exhaustive}): a local search over Pdef-subsets of
    the candidate pool whose objective is the {e actual} schedule length
    under the multi-pattern scheduler.  The search starts from the
    heuristic's answer, so it can only match or improve it; each move swaps
    one pattern for a random pool pattern, keeping sets that fail to cover
    the graph's colors out of reach by construction.

    This is the natural "spend more compute for better patterns" knob the
    paper's future-work section gestures at, and the ablation uses it to
    measure how much headroom the one-pass heuristic leaves. *)

type outcome = {
  patterns : Mps_pattern.Pattern.t list;
  cycles : int;
  evaluations : int;  (** Schedules computed (the cost driver). *)
  improved : bool;  (** Strictly better than the heuristic start. *)
}

val search :
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  Mps_util.Rng.t ->
  pdef:int ->
  Mps_antichain.Classify.t ->
  outcome
(** [iterations] defaults to 2000, [initial_temperature] to 2.0 cycles,
    [cooling] to 0.995 per step.  Deterministic given the generator state.
    @raise Invalid_argument if [pdef < 1], [iterations < 0], [cooling]
    outside (0,1], or the temperature is not positive. *)
