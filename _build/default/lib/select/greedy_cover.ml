module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Pattern = Mps_pattern.Pattern
module Classify = Mps_antichain.Classify

let select ~pdef classify =
  if pdef < 1 then invalid_arg "Greedy_cover.select: pdef must be >= 1";
  let g = Classify.graph classify in
  let capacity = Classify.capacity classify in
  let all_colors = Color.Set.of_list (Dfg.colors g) in
  let pool =
    ref (Classify.fold (fun p ~count ~freq:_ acc -> (p, count) :: acc) classify [] |> List.rev)
  in
  let covered = ref Color.Set.empty in
  let selected = ref [] in
  let stop = ref false in
  for i = 0 to pdef - 1 do
    if not !stop then begin
      let remaining_picks = pdef - i - 1 in
      let missing = Color.Set.cardinal (Color.Set.diff all_colors !covered) in
      let viable =
        List.filter
          (fun (p, _) ->
            let new_colors =
              Color.Set.cardinal (Color.Set.diff (Pattern.color_set p) !covered)
            in
            new_colors >= missing - (capacity * remaining_picks))
          !pool
      in
      let best =
        List.fold_left
          (fun acc (p, count) ->
            match acc with
            | Some (_, bc) when bc >= count -> acc
            | _ -> Some (p, count))
          None viable
      in
      match best with
      | Some (p, _) ->
          pool := List.filter (fun (q, _) -> not (Pattern.subpattern q ~of_:p)) !pool;
          covered := Color.Set.union !covered (Pattern.color_set p);
          selected := p :: !selected
      | None ->
          let uncovered = Color.Set.elements (Color.Set.diff all_colors !covered) in
          if uncovered = [] then stop := true
          else begin
            let rec take k = function
              | [] -> []
              | _ when k = 0 -> []
              | x :: rest -> x :: take (k - 1) rest
            in
            let p = Pattern.of_colors (take capacity uncovered) in
            pool := List.filter (fun (q, _) -> not (Pattern.subpattern q ~of_:p)) !pool;
            covered := Color.Set.union !covered (Pattern.color_set p);
            selected := p :: !selected
          end
    end
  done;
  List.rev !selected
