lib/frontend/lower.mli: Expr Mps_dfg Program
