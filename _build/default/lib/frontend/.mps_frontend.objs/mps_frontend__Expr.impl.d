lib/frontend/expr.ml: Format List Opcode Printf Stdlib String
