lib/frontend/program_text.mli: Program
