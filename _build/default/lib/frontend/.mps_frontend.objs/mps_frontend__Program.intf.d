lib/frontend/program.mli: Format Mps_dfg Opcode
