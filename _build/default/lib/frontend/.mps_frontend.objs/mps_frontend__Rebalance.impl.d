lib/frontend/rebalance.ml: Expr List Lower Mps_util Opcode
