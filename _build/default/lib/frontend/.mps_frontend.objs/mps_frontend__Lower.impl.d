lib/frontend/lower.ml: Array Expr Hashtbl List Mps_dfg Opcode Program String
