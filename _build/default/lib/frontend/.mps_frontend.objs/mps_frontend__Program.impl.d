lib/frontend/program.ml: Array Format Int List Mps_dfg Opcode Printf String
