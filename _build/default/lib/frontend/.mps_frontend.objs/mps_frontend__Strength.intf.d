lib/frontend/strength.mli: Expr Program
