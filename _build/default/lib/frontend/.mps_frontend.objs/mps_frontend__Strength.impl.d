lib/frontend/strength.ml: Expr Float List Lower Opcode
