lib/frontend/program_text.ml: Array Buffer Fun Hashtbl List Mps_dfg Opcode Printf Program String
