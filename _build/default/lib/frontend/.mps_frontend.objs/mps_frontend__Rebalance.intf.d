lib/frontend/rebalance.mli: Expr Program
