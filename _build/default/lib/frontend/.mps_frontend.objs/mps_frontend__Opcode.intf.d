lib/frontend/opcode.mli: Format Mps_dfg
