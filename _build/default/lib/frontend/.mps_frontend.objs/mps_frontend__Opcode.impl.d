lib/frontend/opcode.ml: Array Float Format List Mps_dfg Stdlib
