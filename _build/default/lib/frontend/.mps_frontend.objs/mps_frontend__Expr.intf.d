lib/frontend/expr.mli: Format Opcode
