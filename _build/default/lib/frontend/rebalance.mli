(** Tree-height reduction — an algebraic Transformation-phase pass.

    Kernels written as running sums (every FIR/DCT/matmul reduction) lower
    to left-deep operator chains whose DFG critical path equals the term
    count; any scheduler is then serialized no matter how many ALUs are
    free.  This pass flattens maximal (+)/(−) chains into signed term lists
    and maximal (×) chains into factor lists, rebalances them into
    minimum-height trees, and rebuilds — after which the critical path
    drops from n to ⌈log₂ n⌉ and the multi-pattern scheduler has real
    parallelism to work with.

    Floating-point caveat, stated once and honestly: reassociation changes
    rounding, so results are equal only up to the usual numerical noise;
    tests compare with a relative tolerance.  Integer-valued workloads are
    exact. *)

val depth : Expr.t -> int
(** Operator depth: 0 for variables and constants. *)

val expression : Expr.t -> Expr.t
(** Rebalanced expression; free variables and (up to reassociation) values
    are preserved, and the depth never increases. *)

val bindings : (string * Expr.t) list -> (string * Expr.t) list
(** [expression] applied to every output. *)

val program : ?cse:bool -> (string * Expr.t) list -> Program.t
(** Rebalance then lower — a drop-in replacement for {!Lower.lower}. *)
