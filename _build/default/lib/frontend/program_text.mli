(** Textual program format: save and load {!Program.t} values.

    One instruction per line in SSA style, outputs declared at the end:

    {v
    # comment
    %t0 = mul x0, #0.5
    %t1 = mac x1, #0.25, %t0
    out y0 = %t1
    v}

    Operands are [%name] (an earlier instruction), [#literal], or a bare
    identifier (an external input).  Instruction names become DFG node
    names, so the format round-trips through {!to_string}/{!of_string}
    losslessly (ids are assigned in line order).  Literals print with
    17 significant digits and therefore round-trip bit-exactly. *)

exception Parse_error of { line : int; message : string }

val to_string : Program.t -> string

val of_string : string -> Program.t
(** @raise Parse_error on malformed input (forward references, unknown
    opcodes, arity errors, duplicate names). *)

val load : string -> Program.t
(** From a file.  @raise Sys_error / @raise Parse_error. *)

val save : string -> Program.t -> unit
