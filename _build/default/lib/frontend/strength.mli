(** Strength reduction: multiplications by powers of two become shifts.

    On the Montium the multiplier column ('c' slots) is the scarce,
    power-hungry resource; a shift runs on the cheap logic units ('g'
    color).  Rewriting x·2ᵏ (and x·−2ᵏ, with a negation) as shifts moves
    work off the multiplier, changing the graph's {e color mix} — which
    directly changes which patterns the selection algorithm should pick, a
    fact the ablation bench quantifies.

    Only exact powers of two with 0 ≤ k ≤ 14 rewrite (the 16-bit datapath
    bound); everything else is untouched.  Semantics: on the fixed-point
    datapath ({!Mps_montium.Fixed_point}) a raw left shift by k {e is}
    multiplication by 2ᵏ (up to saturation), so the rewrite is exact
    there; the float reference model truncates shift operands to integers,
    so on {e fractional} float data the rewritten program is the honest
    picture of what the hardware would do, not a bit-identical float
    program — the tests therefore check equivalence on integer data and
    under fixed-point evaluation. *)

val power_of_two : float -> int option
(** [power_of_two 8.0 = Some 3]; [None] for non-powers, negatives, and
    k outside [0, 14].  [power_of_two 1.0 = Some 0] (the smart constructor
    already folds ·1, so it never reaches the rewrite). *)

val expression : Expr.t -> Expr.t
(** Bottom-up rewrite. *)

val bindings : (string * Expr.t) list -> (string * Expr.t) list

val program : ?cse:bool -> (string * Expr.t) list -> Program.t
(** Rewrite then lower. *)
