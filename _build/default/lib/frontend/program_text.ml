module Dfg = Mps_dfg.Dfg

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let to_string program =
  let g = Program.dfg program in
  let buf = Buffer.create 1024 in
  Dfg.iter_nodes
    (fun i ->
      let { Program.opcode; operands } = Program.instruction program i in
      let operand = function
        | Program.Input name -> name
        | Program.Literal f -> Printf.sprintf "#%.17g" f
        | Program.Node j -> "%" ^ Dfg.name g j
      in
      Buffer.add_string buf
        (Printf.sprintf "%%%s = %s %s\n" (Dfg.name g i) (Opcode.to_string opcode)
           (String.concat ", " (List.map operand (Array.to_list operands)))))
    g;
  List.iter
    (fun (name, i) ->
      Buffer.add_string buf (Printf.sprintf "out %s = %%%s\n" name (Dfg.name g i)))
    (Program.outputs program);
  Buffer.contents buf

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  (* '#' also begins literals; only strip when it starts a token preceded by
     whitespace-or-start and followed by a non-digit/non-sign character
     would be fragile — instead comments must start the line. *)
  | Some 0 -> ""
  | Some _ -> s

let of_string text =
  let builder = Dfg.Builder.create () in
  let instructions = ref [] in
  let ids = Hashtbl.create 64 in
  let outputs = ref [] in
  let parse_operand lineno tok =
    let tok = String.trim tok in
    if tok = "" then fail lineno "empty operand"
    else if tok.[0] = '%' then begin
      let name = String.sub tok 1 (String.length tok - 1) in
      match Hashtbl.find_opt ids name with
      | Some id -> Program.Node id
      | None -> fail lineno "unknown (or forward) value %%%s" name
    end
    else if tok.[0] = '#' then begin
      match float_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
      | Some f -> Program.Literal f
      | None -> fail lineno "bad literal %s" tok
    end
    else Program.Input tok
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line = "" then ()
      else if String.length line > 4 && String.sub line 0 4 = "out " then begin
        match String.split_on_char '=' (String.sub line 4 (String.length line - 4)) with
        | [ name; value ] -> (
            let name = String.trim name and value = String.trim value in
            if String.length value < 2 || value.[0] <> '%' then
              fail lineno "output must name a %%value";
            let vname = String.sub value 1 (String.length value - 1) in
            match Hashtbl.find_opt ids vname with
            | Some id -> outputs := (name, id) :: !outputs
            | None -> fail lineno "unknown value %%%s" vname)
        | _ -> fail lineno "malformed output line"
      end
      else begin
        match String.split_on_char '=' line with
        | [ lhs; rhs ] -> (
            let lhs = String.trim lhs in
            if String.length lhs < 2 || lhs.[0] <> '%' then
              fail lineno "definitions start with %%name";
            let name = String.sub lhs 1 (String.length lhs - 1) in
            let rhs = String.trim rhs in
            match String.index_opt rhs ' ' with
            | None -> fail lineno "missing operands"
            | Some sp -> (
                let op_txt = String.sub rhs 0 sp in
                let rest = String.sub rhs sp (String.length rhs - sp) in
                match Opcode.of_string op_txt with
                | None -> fail lineno "unknown opcode %S" op_txt
                | Some opcode ->
                    let operands =
                      String.split_on_char ',' rest
                      |> List.map (parse_operand lineno)
                      |> Array.of_list
                    in
                    if Array.length operands <> Opcode.arity opcode then
                      fail lineno "%s takes %d operands" op_txt (Opcode.arity opcode);
                    let id =
                      try Dfg.Builder.add_node builder ~name (Opcode.color opcode)
                      with Invalid_argument m -> fail lineno "%s" m
                    in
                    Hashtbl.add ids name id;
                    Array.iter
                      (function
                        | Program.Node j -> Dfg.Builder.add_edge builder j id
                        | Program.Input _ | Program.Literal _ -> ())
                      operands;
                    instructions := { Program.opcode; operands } :: !instructions))
        | _ -> fail lineno "expected '%%name = op operands' or 'out name = %%value'"
      end)
    (String.split_on_char '\n' text);
  Program.make ~dfg:(Dfg.Builder.build builder)
    ~instructions:(Array.of_list (List.rev !instructions))
    ~outputs:(List.rev !outputs)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path program =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string program))
