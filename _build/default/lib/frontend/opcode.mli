(** Operation repertoire of the lowered programs.

    Each opcode maps to one scheduling color — the paper's letters: 'a' for
    addition, 'b' for subtraction, 'c' for multiplication — extended with
    the other functions a Montium ALU offers (§1 mentions bit-or among the
    configurable functions). *)

type t =
  | Add
  | Sub
  | Mul
  | Neg  (** Unary minus; runs on the subtractor, color 'b'. *)
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Min
  | Max
  | Mac  (** Fused multiply-accumulate: x·y + z, one ALU pass (color 'm'). *)

val color : t -> Mps_dfg.Color.t
(** Add→'a', Sub/Neg→'b', Mul→'c', And→'d', Or→'e', Xor→'f', Shl/Shr→'g',
    Min→'h', Max→'i', Mac→'m'. *)

val arity : t -> int
(** 1 for [Neg], 3 for [Mac], 2 otherwise. *)

val eval : t -> float array -> float
(** Applies the operation to its operands.  Bitwise and shift operations
    truncate their arguments to integers first (the Montium datapath is
    16-bit integer; we model values as floats for the arithmetic workloads
    and document the truncation).  @raise Invalid_argument on an operand
    count differing from [arity]. *)

val to_string : t -> string
val of_string : string -> t option
val all : t list
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
