(** Lowering expressions to programs — the Transformation phase of the
    Montium compiler flow the paper builds on (its reference [3]).

    Each named output expression becomes a tree of DFG nodes; with [cse]
    (default on), structurally equal subexpressions — after normalizing
    commutative operand order — are shared, so the result is a DAG, exactly
    the shape the 3DFT graph of Fig. 2 has.  Constants were already folded
    by the {!Expr} smart constructors; remaining constants become
    instruction literals, and variables become external inputs (neither
    occupies a DFG node, matching the paper's graphs where only operations
    are nodes). *)

val lower : ?cse:bool -> (string * Expr.t) list -> Program.t
(** @raise Invalid_argument on duplicate output names.  An output that is a
    bare variable or constant is materialized as an addition with 0 so it
    owns a node. *)

val lower_dfg : ?cse:bool -> (string * Expr.t) list -> Mps_dfg.Dfg.t
(** Just the graph. *)
