module Color = Mps_dfg.Color

type t = Add | Sub | Mul | Neg | And | Or | Xor | Shl | Shr | Min | Max | Mac

let color = function
  | Add -> Color.of_char 'a'
  | Sub | Neg -> Color.of_char 'b'
  | Mul -> Color.of_char 'c'
  | And -> Color.of_char 'd'
  | Or -> Color.of_char 'e'
  | Xor -> Color.of_char 'f'
  | Shl | Shr -> Color.of_char 'g'
  | Min -> Color.of_char 'h'
  | Max -> Color.of_char 'i'
  | Mac -> Color.of_char 'm'

let arity = function Neg -> 1 | Mac -> 3 | _ -> 2

let bitwise f x y =
  let xi = int_of_float x and yi = int_of_float y in
  float_of_int (f xi yi)

let eval op args =
  if Array.length args <> arity op then
    invalid_arg "Opcode.eval: operand count mismatch";
  match op with
  | Add -> args.(0) +. args.(1)
  | Sub -> args.(0) -. args.(1)
  | Mul -> args.(0) *. args.(1)
  | Neg -> -.args.(0)
  | And -> bitwise ( land ) args.(0) args.(1)
  | Or -> bitwise ( lor ) args.(0) args.(1)
  | Xor -> bitwise ( lxor ) args.(0) args.(1)
  | Shl -> bitwise (fun x y -> x lsl (y land 63)) args.(0) args.(1)
  | Shr -> bitwise (fun x y -> x asr (y land 63)) args.(0) args.(1)
  | Min -> Float.min args.(0) args.(1)
  | Max -> Float.max args.(0) args.(1)
  | Mac -> (args.(0) *. args.(1)) +. args.(2)

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Neg -> "neg"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Min -> "min"
  | Max -> "max"
  | Mac -> "mac"

let all = [ Add; Sub; Mul; Neg; And; Or; Xor; Shl; Shr; Min; Max; Mac ]
let of_string s = List.find_opt (fun op -> to_string op = s) all
let equal = ( = )
let compare = Stdlib.compare
let pp ppf op = Format.pp_print_string ppf (to_string op)
