(** Lowered programs: a DFG plus the operational detail scheduling throws
    away.

    The scheduler only needs colors and dependencies, but verifying a
    mapped schedule end-to-end needs to {e run} it: each node's opcode and
    its operand sources (graph inputs, folded constants, or other nodes, in
    argument order).  A [Program] carries both views, with node ids shared
    between them, and a reference evaluator defining the semantics. *)

type operand =
  | Input of string  (** External input value, by name. *)
  | Literal of float  (** Constant folded into the instruction. *)
  | Node of int  (** Result of another DFG node (always a DFG edge). *)

type instruction = { opcode : Opcode.t; operands : operand array }

type t

val make :
  dfg:Mps_dfg.Dfg.t ->
  instructions:instruction array ->
  outputs:(string * int) list ->
  t
(** @raise Invalid_argument when the instruction array length differs from
    the node count, an instruction's [Node] operands disagree with the DFG's
    predecessor sets, an opcode's color differs from the node color, an
    arity is wrong, or an output names an unknown node. *)

val dfg : t -> Mps_dfg.Dfg.t
val instruction : t -> int -> instruction
val outputs : t -> (string * int) list
(** Named results, in declaration order. *)

val inputs : t -> string list
(** External input names, sorted, deduplicated. *)

val eval : env:(string -> float) -> t -> (string * float) list
(** Reference semantics: evaluate every node in topological order, return
    the outputs.  @raise Not_found from [env] for an unbound input. *)

val eval_nodes : env:(string -> float) -> t -> float array
(** Per-node values (indexed by node id) under the same semantics. *)

val pp : Format.formatter -> t -> unit
