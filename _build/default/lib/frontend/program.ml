module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Topo = Mps_dfg.Topo

type operand = Input of string | Literal of float | Node of int

type instruction = { opcode : Opcode.t; operands : operand array }

type t = {
  dfg : Dfg.t;
  instructions : instruction array;
  outputs : (string * int) list;
}

let make ~dfg ~instructions ~outputs =
  let n = Dfg.node_count dfg in
  if Array.length instructions <> n then
    invalid_arg "Program.make: instruction count differs from node count";
  Array.iteri
    (fun i { opcode; operands } ->
      if Array.length operands <> Opcode.arity opcode then
        invalid_arg (Printf.sprintf "Program.make: node %d arity mismatch" i);
      if not (Color.equal (Opcode.color opcode) (Dfg.color dfg i)) then
        invalid_arg (Printf.sprintf "Program.make: node %d color mismatch" i);
      let operand_nodes =
        Array.to_list operands
        |> List.filter_map (function Node j -> Some j | Input _ | Literal _ -> None)
        |> List.sort_uniq Int.compare
      in
      if operand_nodes <> Dfg.preds dfg i then
        invalid_arg
          (Printf.sprintf "Program.make: node %d operands disagree with DFG edges" i))
    instructions;
  List.iter
    (fun (name, i) ->
      if i < 0 || i >= n then
        invalid_arg (Printf.sprintf "Program.make: output %S names unknown node %d" name i))
    outputs;
  { dfg; instructions; outputs }

let dfg t = t.dfg

let instruction t i =
  if i < 0 || i >= Array.length t.instructions then
    invalid_arg (Printf.sprintf "Program.instruction: node id %d out of range" i);
  t.instructions.(i)

let outputs t = t.outputs

let inputs t =
  Array.to_list t.instructions
  |> List.concat_map (fun { operands; _ } ->
         Array.to_list operands
         |> List.filter_map (function Input s -> Some s | Literal _ | Node _ -> None))
  |> List.sort_uniq String.compare

let eval_nodes ~env t =
  let values = Array.make (Dfg.node_count t.dfg) nan in
  List.iter
    (fun i ->
      let { opcode; operands } = t.instructions.(i) in
      let args =
        Array.map
          (function Input s -> env s | Literal f -> f | Node j -> values.(j))
          operands
      in
      values.(i) <- Opcode.eval opcode args)
    (Topo.order t.dfg);
  values

let eval ~env t =
  let values = eval_nodes ~env t in
  List.map (fun (name, i) -> (name, values.(i))) t.outputs

let pp ppf t =
  let pp_operand ppf = function
    | Input s -> Format.pp_print_string ppf s
    | Literal f -> Format.fprintf ppf "%g" f
    | Node j -> Format.fprintf ppf "%%%s" (Dfg.name t.dfg j)
  in
  Format.fprintf ppf "@[<v>";
  Dfg.iter_nodes
    (fun i ->
      let { opcode; operands } = t.instructions.(i) in
      Format.fprintf ppf "%%%s = %a %a@," (Dfg.name t.dfg i) Opcode.pp opcode
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_operand)
        (Array.to_list operands))
    t.dfg;
  List.iter (fun (name, i) -> Format.fprintf ppf "out %s = %%%s@," name (Dfg.name t.dfg i)) t.outputs;
  Format.fprintf ppf "@]"
