let rec depth = function
  | Expr.Var _ | Expr.Const _ -> 0
  | Expr.Unop (_, e) -> 1 + depth e
  | Expr.Binop (_, x, y) -> 1 + max (depth x) (depth y)

(* Minimize the rebuilt tree's height over terms of differing depths by the
   minimax-Huffman rule: always combine the two currently-shallowest terms
   (cost of a combine = 1 + max of the operand heights).  The original
   expression is itself one tree over the same terms, so the minimax
   optimum never exceeds the original depth. *)
module Term_heap = Mps_util.Heap.Make (struct
  type t = int * int * (bool * Expr.t)
  (* (height, tiebreak id, (sign, expr)); the id keeps the order total and
     deterministic. *)

  let compare (h1, i1, _) (h2, i2, _) = compare (h1, i1) (h2, i2)
end)

let reduce_terms terms =
  let heap = Term_heap.create () in
  let counter = ref 0 in
  let push h t =
    Term_heap.add heap (h, !counter, t);
    incr counter
  in
  List.iter (fun (sign, e) -> push (depth e) (sign, e)) terms;
  let rec reduce () =
    match (Term_heap.pop heap, Term_heap.pop heap) with
    | Some (_, _, (sign, e)), None -> if sign then e else Expr.neg e
    | Some (h1, _, (s1, e1)), Some (h2, _, (s2, e2)) ->
        let combined =
          match (s1, s2) with
          | true, true -> (true, Expr.( + ) e1 e2)
          | true, false -> (true, Expr.( - ) e1 e2)
          | false, true -> (true, Expr.( - ) e2 e1)
          | false, false -> (false, Expr.( + ) e1 e2)
        in
        push (1 + max h1 h2) combined;
        reduce ()
    | None, _ -> assert false
  in
  reduce ()

let signed_reduce terms =
  match terms with
  | [] -> invalid_arg "Rebalance.signed_reduce: no terms"
  | _ ->
      if List.exists fst terms then reduce_terms terms
      else begin
        (* All-negative: a plain reduction ends in a trailing Neg, which
           the original may have avoided by negating deeper.  Also try
           flipping the shallowest term into an explicit Neg (the set
           becomes mixed, so no trailing Neg) and keep the shallower. *)
        let ranked =
          List.sort
            (fun (_, a) (_, b) -> compare (depth a) (depth b))
            terms
        in
        let flipped =
          match ranked with
          | (_, shallowest) :: rest -> (true, Expr.neg shallowest) :: rest
          | [] -> assert false
        in
        let direct = reduce_terms terms in
        let via_flip = reduce_terms flipped in
        if depth via_flip < depth direct then via_flip else direct
      end

(* Same minimax combining for a product of factors. *)
let product_reduce factors =
  match factors with
  | [] -> invalid_arg "Rebalance.product_reduce: no factors"
  | _ ->
      let heap = Term_heap.create () in
      let counter = ref 0 in
      let push h e =
        Term_heap.add heap (h, !counter, (true, e));
        incr counter
      in
      List.iter (fun f -> push (depth f) f) factors;
      let rec reduce () =
        match (Term_heap.pop heap, Term_heap.pop heap) with
        | Some (_, _, (_, e)), None -> e
        | Some (h1, _, (_, e1)), Some (h2, _, (_, e2)) ->
            push (1 + max h1 h2) (Expr.( * ) e1 e2);
            reduce ()
        | None, _ -> assert false
      in
      reduce ()

(* Flatten a maximal additive region into signed terms; subtrees that are
   not additive get rebalanced independently. *)
let rec additive_terms e =
  match e with
  | Expr.Binop (Opcode.Add, x, y) -> additive_terms x @ additive_terms y
  | Expr.Binop (Opcode.Sub, x, y) ->
      additive_terms x @ List.map (fun (sign, t) -> (not sign, t)) (additive_terms y)
  | Expr.Unop (Opcode.Neg, x) ->
      List.map (fun (sign, t) -> (not sign, t)) (additive_terms x)
  | other -> [ (true, expression other) ]

and multiplicative_factors e =
  match e with
  | Expr.Binop (Opcode.Mul, x, y) -> multiplicative_factors x @ multiplicative_factors y
  | other -> [ expression other ]

and expression e =
  match e with
  | Expr.Var _ | Expr.Const _ -> e
  | Expr.Binop ((Opcode.Add | Opcode.Sub), _, _) | Expr.Unop (Opcode.Neg, _) ->
      signed_reduce (additive_terms e)
  | Expr.Binop (Opcode.Mul, _, _) ->
      product_reduce (multiplicative_factors e)
  | Expr.Binop (op, x, y) -> Expr.binop op (expression x) (expression y)
  | Expr.Unop (op, x) -> Expr.unop op (expression x)

(* The all-negative flip re-exposes additive structure a second pass can
   sometimes flatten further; iterate to a depth fixpoint so the pass is
   idempotent (the depth strictly decreases per round, so this
   terminates). *)
let expression e =
  let rec fix e d =
    let e' = expression e in
    let d' = depth e' in
    if d' < d then fix e' d' else e
  in
  fix e (depth e)

let bindings bs = List.map (fun (name, e) -> (name, expression e)) bs
let program ?cse bs = Lower.lower ?cse (bindings bs)
