(** Arithmetic expressions — the input language of the Transformation phase.

    An expression references named inputs and floating constants and
    combines them with the {!Opcode} repertoire.  {!Lower} turns a set of
    named output expressions into a data-flow graph; {!eval} provides the
    reference semantics the Montium simulator is checked against. *)

type t =
  | Var of string
  | Const of float
  | Unop of Opcode.t * t
  | Binop of Opcode.t * t * t

(** {1 Smart constructors} — fold constants eagerly and apply the safe
    identities x+0, 0+x, x−0, x·1, 1·x, x·0, 0·x, −(−x). *)

val var : string -> t
val const : float -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val neg : t -> t
val binop : Opcode.t -> t -> t -> t
(** @raise Invalid_argument on a unary opcode. *)

val unop : Opcode.t -> t -> t
(** @raise Invalid_argument on a binary opcode. *)

(** {1 Semantics and queries} *)

val eval : env:(string -> float) -> t -> float
(** @raise Not_found propagated from [env] for unbound variables. *)

val free_vars : t -> string list
(** Sorted, deduplicated. *)

val size : t -> int
(** Number of operation nodes (Vars and Consts excluded). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Fully parenthesized infix. *)
