type t =
  | Var of string
  | Const of float
  | Unop of Opcode.t * t
  | Binop of Opcode.t * t * t

let var s = Var s
let const f = Const f

let rec binop op x y =
  if Opcode.arity op <> 2 then
    invalid_arg (Printf.sprintf "Expr.binop: %s is not binary" (Opcode.to_string op));
  match (op, x, y) with
  | _, Const a, Const b -> Const (Opcode.eval op [| a; b |])
  | Opcode.Add, e, Const 0.0 | Opcode.Add, Const 0.0, e -> e
  | Opcode.Sub, e, Const 0.0 -> e
  | Opcode.Sub, Const 0.0, e -> unop Opcode.Neg e
  | Opcode.Mul, e, Const 1.0 | Opcode.Mul, Const 1.0, e -> e
  | Opcode.Mul, _, Const 0.0 | Opcode.Mul, Const 0.0, _ -> Const 0.0
  | Opcode.Mul, e, Const -1.0 | Opcode.Mul, Const -1.0, e -> unop Opcode.Neg e
  (* Fold unary negations into the cheaper two-operand forms. *)
  | Opcode.Add, e, Unop (Opcode.Neg, f) -> binop Opcode.Sub e f
  | Opcode.Add, Unop (Opcode.Neg, e), f -> binop Opcode.Sub f e
  | Opcode.Sub, e, Unop (Opcode.Neg, f) -> binop Opcode.Add e f
  | _ -> Binop (op, x, y)

and unop op e =
  if Opcode.arity op <> 1 then
    invalid_arg (Printf.sprintf "Expr.unop: %s is not unary" (Opcode.to_string op));
  match (op, e) with
  | Opcode.Neg, Const f -> Const (-.f)
  | Opcode.Neg, Unop (Opcode.Neg, inner) -> inner
  | _ -> Unop (op, e)

let ( + ) x y = binop Opcode.Add x y
let ( - ) x y = binop Opcode.Sub x y
let ( * ) x y = binop Opcode.Mul x y
let neg e = unop Opcode.Neg e

let rec eval ~env = function
  | Var s -> env s
  | Const f -> f
  | Unop (op, e) -> Opcode.eval op [| eval ~env e |]
  | Binop (op, x, y) -> Opcode.eval op [| eval ~env x; eval ~env y |]

let free_vars e =
  let rec go acc = function
    | Var s -> s :: acc
    | Const _ -> acc
    | Unop (_, e) -> go acc e
    | Binop (_, x, y) -> go (go acc x) y
  in
  List.sort_uniq String.compare (go [] e)

let rec size = function
  | Var _ | Const _ -> 0
  | Unop (_, e) -> Stdlib.( + ) 1 (size e)
  | Binop (_, x, y) -> Stdlib.( + ) 1 (Stdlib.( + ) (size x) (size y))

let equal = ( = )
let compare = Stdlib.compare

let rec pp ppf = function
  | Var s -> Format.pp_print_string ppf s
  | Const f -> Format.fprintf ppf "%g" f
  | Unop (op, e) -> Format.fprintf ppf "%a(%a)" Opcode.pp op pp e
  | Binop (op, x, y) ->
      let sym =
        match op with
        | Opcode.Add -> "+"
        | Opcode.Sub -> "-"
        | Opcode.Mul -> "*"
        | other -> Printf.sprintf " %s " (Opcode.to_string other)
      in
      Format.fprintf ppf "(%a%s%a)" pp x sym pp y
