module Dfg = Mps_dfg.Dfg

(* CSE key: opcode plus operand keys, commutative operands sorted. *)
type key = K of Opcode.t * okey list
and okey = KInput of string | KLit of float | KNode of int

let commutative = function
  | Opcode.Add | Opcode.Mul | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Min
  | Opcode.Max ->
      true
  | Opcode.Sub | Opcode.Neg | Opcode.Shl | Opcode.Shr | Opcode.Mac -> false

let lower ?(cse = true) bindings =
  let names = List.map fst bindings in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Lower.lower: duplicate output names";
  let builder = Dfg.Builder.create () in
  let instructions = ref [] in (* reversed; id order *)
  let count = ref 0 in
  let memo : (key, int) Hashtbl.t = Hashtbl.create 64 in
  let emit opcode operands =
    let okeys =
      Array.to_list operands
      |> List.map (function
           | Program.Input s -> KInput s
           | Program.Literal f -> KLit f
           | Program.Node j -> KNode j)
    in
    let okeys = if commutative opcode then List.sort compare okeys else okeys in
    let key = K (opcode, okeys) in
    match if cse then Hashtbl.find_opt memo key else None with
    | Some id -> id
    | None ->
        let id = Dfg.Builder.add_node builder (Opcode.color opcode) in
        assert (id = !count);
        incr count;
        Array.iter
          (function
            | Program.Node j -> Dfg.Builder.add_edge builder j id
            | Program.Input _ | Program.Literal _ -> ())
          operands;
        instructions := { Program.opcode; operands } :: !instructions;
        if cse then Hashtbl.add memo key id;
        id
  in
  (* Returns the operand denoting the expression's value. *)
  let rec go : Expr.t -> Program.operand = function
    | Expr.Var s -> Program.Input s
    | Expr.Const f -> Program.Literal f
    | Expr.Unop (op, e) ->
        let x = go e in
        Program.Node (emit op [| x |])
    | Expr.Binop (op, a, b) ->
        let x = go a in
        let y = go b in
        Program.Node (emit op [| x; y |])
  in
  let outputs =
    List.map
      (fun (name, e) ->
        let id =
          match go e with
          | Program.Node id -> id
          | (Program.Input _ | Program.Literal _) as trivial ->
              (* Give the bare value a node of its own: v + 0. *)
              emit Opcode.Add [| trivial; Program.Literal 0.0 |]
        in
        (name, id))
      bindings
  in
  let dfg = Dfg.Builder.build builder in
  let instructions = Array.of_list (List.rev !instructions) in
  Program.make ~dfg ~instructions ~outputs

let lower_dfg ?cse bindings = Program.dfg (lower ?cse bindings)
