let power_of_two f =
  if f <= 0.0 || Float.is_nan f || Float.is_integer (Float.log2 f) = false then None
  else begin
    let k = int_of_float (Float.log2 f) in
    if k >= 0 && k <= 14 && Float.equal (Float.pow 2.0 (float_of_int k)) f then Some k
    else None
  end

let shift e k =
  if k = 0 then e else Expr.binop Opcode.Shl e (Expr.const (float_of_int k))

let rec expression e =
  match e with
  | Expr.Var _ | Expr.Const _ -> e
  | Expr.Unop (op, x) -> Expr.unop op (expression x)
  | Expr.Binop (Opcode.Mul, x, y) -> (
      let x = expression x and y = expression y in
      let rewrite coeff other =
        match power_of_two coeff with
        | Some k -> Some (shift other k)
        | None -> (
            match power_of_two (-.coeff) with
            | Some k -> Some (Expr.neg (shift other k))
            | None -> None)
      in
      let attempt =
        match (x, y) with
        | Expr.Const c, other | other, Expr.Const c -> rewrite c other
        | _ -> None
      in
      match attempt with
      | Some reduced -> reduced
      | None -> Expr.binop Opcode.Mul x y)
  | Expr.Binop (op, x, y) -> Expr.binop op (expression x) (expression y)

let bindings bs = List.map (fun (name, e) -> (name, expression e)) bs
let program ?cse bs = Lower.lower ?cse (bindings bs)
