lib/core/core.ml: Mps_antichain Mps_clustering Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_select Mps_util Mps_workloads Pipeline
