lib/core/pipeline.mli: Format Mps_clustering Mps_dfg Mps_frontend Mps_montium Mps_pattern Mps_scheduler Mps_select
