module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower

let fir ~taps ~block =
  if taps = [] then invalid_arg "Kernels.fir: empty taps";
  if block < 1 then invalid_arg "Kernels.fir: block < 1";
  let ntaps = List.length taps in
  (* Window x0 (oldest) .. x{block+ntaps-2} (newest); output yn uses
     x{n+ntaps-1-k} for tap k. *)
  let x i = Expr.var (Printf.sprintf "x%d" i) in
  let bindings =
    List.init block (fun out ->
        let terms =
          List.mapi
            (fun k c ->
              let idx = out + ntaps - 1 - k in
              Expr.(const c * x idx))
            taps
        in
        let sum =
          match terms with
          | [] -> assert false
          | first :: rest -> List.fold_left Expr.( + ) first rest
        in
        (Printf.sprintf "y%d" out, sum))
  in
  Lower.lower bindings

let fir_reference ~taps window =
  let ntaps = List.length taps in
  let block = Array.length window - ntaps + 1 in
  if block < 1 then invalid_arg "Kernels.fir_reference: window too short";
  Array.init block (fun out ->
      List.fold_left ( +. ) 0.0
        (List.mapi (fun k c -> c *. window.(out + ntaps - 1 - k)) taps))

let iir_biquad ~b:(b0, b1, b2) ~a:(a1, a2) ~block =
  if block < 1 then invalid_arg "Kernels.iir_biquad: block < 1";
  let x i =
    if i >= 0 then Expr.var (Printf.sprintf "x%d" i)
    else Expr.var (Printf.sprintf "x_%d" (-i))
  in
  let ys = Array.make block (Expr.const 0.0) in
  let y i =
    if i >= 0 then ys.(i) else Expr.var (Printf.sprintf "y_%d" (-i))
  in
  for n = 0 to block - 1 do
    let xn = x n and xn1 = x (n - 1) and xn2 = x (n - 2) in
    let yn1 = y (n - 1) and yn2 = y (n - 2) in
    ys.(n) <-
      Expr.(
        (const b0 * xn) + (const b1 * xn1) + (const b2 * xn2)
        - (const a1 * yn1)
        - (const a2 * yn2))
  done;
  Lower.lower (List.init block (fun n -> (Printf.sprintf "y%d" n, ys.(n))))

let dct8_coeff k j =
  let c = cos (Float.pi /. 8.0 *. (float_of_int j +. 0.5) *. float_of_int k) in
  if Float.abs c < 1e-12 then 0.0 else c

let dct8 () =
  let x j = Expr.var (Printf.sprintf "x%d" j) in
  let bindings =
    List.init 8 (fun k ->
        let terms = List.init 8 (fun j -> Expr.(const (dct8_coeff k j) * x j)) in
        let sum =
          match terms with
          | first :: rest -> List.fold_left Expr.( + ) first rest
          | [] -> assert false
        in
        (Printf.sprintf "X%d" k, sum))
  in
  Lower.lower bindings

let dct8_reference xs =
  if Array.length xs <> 8 then invalid_arg "Kernels.dct8_reference: need 8 samples";
  Array.init 8 (fun k ->
      let acc = ref 0.0 in
      for j = 0 to 7 do
        acc := !acc +. (dct8_coeff k j *. xs.(j))
      done;
      !acc)

let matmul ~m ~k ~n =
  if m < 1 || k < 1 || n < 1 then invalid_arg "Kernels.matmul: non-positive dimension";
  let a i j = Expr.var (Printf.sprintf "a_%d_%d" i j) in
  let b i j = Expr.var (Printf.sprintf "b_%d_%d" i j) in
  let bindings =
    List.concat_map
      (fun i ->
        List.init n (fun j ->
            let terms = List.init k (fun l -> Expr.(a i l * b l j)) in
            let sum =
              match terms with
              | first :: rest -> List.fold_left Expr.( + ) first rest
              | [] -> assert false
            in
            (Printf.sprintf "c_%d_%d" i j, sum)))
      (List.init m Fun.id)
  in
  Lower.lower bindings

let horner ~degree =
  if degree < 1 then invalid_arg "Kernels.horner: degree < 1";
  let x = Expr.var "x" in
  let c i = Expr.var (Printf.sprintf "c%d" i) in
  let rec go acc i = if i < 0 then acc else go Expr.((acc * x) + c i) (i - 1) in
  Lower.lower [ ("y", go (c degree) (degree - 1)) ]
