module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color

let a = Color.add
let b = Color.sub
let c = Color.mul

(* Node declaration order fixes ids; we keep the paper's numbering order
   b1, a2, b3, a4, b5, b6, a7, a8, c9..c14, a15..a24 so that traces sort the
   way the paper's candidate lists read. *)
let fig2_3dft () =
  Dfg.of_alist
    [
      ("b1", b); ("a2", a); ("b3", b); ("a4", a); ("b5", b); ("b6", b);
      ("a7", a); ("a8", a);
      ("c9", c); ("c10", c); ("c11", c); ("c12", c); ("c13", c); ("c14", c);
      ("a15", a); ("a16", a); ("a17", a); ("a18", a); ("a19", a); ("a20", a);
      ("a21", a); ("a22", a); ("a23", a); ("a24", a);
    ]
    [
      (* first stage feeding the multiplier column *)
      ("a4", "c11"); ("a4", "a24");
      ("a2", "c10"); ("a2", "a16");
      ("b1", "c9"); ("b5", "c13");
      ("b3", "a8"); ("b6", "a7");
      ("a8", "c14"); ("a7", "c12");
      (* multiplier outputs recombine *)
      ("c9", "a15"); ("c13", "a18"); ("c14", "a20"); ("c12", "a17");
      ("c11", "a15"); ("c11", "a20");
      ("c10", "a18"); ("c10", "a17");
      (* final butterfly adds *)
      ("a15", "a19"); ("a18", "a22"); ("a20", "a23"); ("a17", "a21");
    ]

let fig4_small () =
  Dfg.of_alist
    [ ("a1", a); ("a2", a); ("a3", a); ("b4", b); ("b5", b) ]
    [ ("a1", "a2"); ("a2", "b4"); ("a2", "b5"); ("a3", "b4"); ("a3", "b5") ]

let montium_capacity = 5
let montium_max_configs = 32

let table1 =
  [
    ("b3", (0, 0, 5)); ("b6", (0, 0, 5));
    ("b1", (0, 1, 4)); ("b5", (0, 1, 4));
    ("a4", (0, 1, 4)); ("a2", (0, 1, 4));
    ("a8", (1, 1, 4)); ("a7", (1, 1, 4));
    ("c9", (1, 2, 3)); ("c13", (1, 2, 3));
    ("c11", (1, 2, 3)); ("c10", (1, 2, 3));
    ("a24", (1, 4, 1)); ("a16", (1, 4, 1));
    ("a15", (2, 3, 2)); ("a18", (2, 3, 2));
    ("a20", (3, 3, 2)); ("a17", (3, 3, 2));
    ("a19", (3, 4, 1)); ("a22", (3, 4, 1));
    ("a23", (4, 4, 1)); ("a21", (4, 4, 1));
  ]

let table5 =
  [
    (4, [| 24; 224; 1034; 2500; 3104 |]);
    (3, [| 24; 222; 1010; 2404; 2954 |]);
    (2, [| 24; 208; 870; 1926; 2282 |]);
    (1, [| 24; 178; 632; 1232; 1364 |]);
    (0, [| 24; 124; 304; 425; 356 |]);
  ]

let table3_pattern_sets =
  [
    ([ "abcbc"; "bbbab"; "bbbcb"; "babaa" ], 8);
    ([ "abcbc"; "bcbca"; "cbaba"; "bbccb" ], 9);
    ([ "abccc"; "aabac"; "cccaa"; "ababb" ], 7);
  ]

let table7_3dft =
  [ (1, 12.4, 8); (2, 10.5, 7); (3, 8.7, 7); (4, 7.9, 7); (5, 6.5, 6) ]

let table7_5dft =
  [ (1, 23.4, 19); (2, 22.0, 16); (3, 20.4, 16); (4, 15.8, 15); (5, 15.8, 15) ]

let section4_patterns = ("aabcc", "aaacc")
let section4_cycles = 7

(* Color bags of Table 2's per-cycle selected sets:
   {a2,a4,b6} {a7,a24,b3,c10,c11} {a8,a16,b5,c12} {a17,b1,c13,c14}
   {a18,a20,a21,c9} {a15,a22,a23} {a19}, with pattern choices
   1,1,1,1,2,2,1. *)
let table2 =
  [
    ("aab", 1); ("aabcc", 1); ("aabc", 1); ("abcc", 1);
    ("aaac", 2); ("aaa", 2); ("a", 1);
  ]
