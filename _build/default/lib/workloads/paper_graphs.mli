(** The exact graphs the paper evaluates on, plus the published numbers.

    Figure 2's 3DFT graph is reconstructed from the paper's tables — see
    DESIGN.md §2 for the derivation and the evidence that the reconstruction
    is the paper's graph (Table 1's 22 level triples and all 25 antichain
    counts of Table 5 are reproduced exactly).  Figure 4's 5-node example is
    pinned down by Table 4 (its antichains) and Table 6 (node
    frequencies). *)

val fig2_3dft : unit -> Mps_dfg.Dfg.t
(** The 24-node 3-point DFT data-flow graph of Fig. 2: 14 additions ('a'),
    4 subtractions ('b'), 6 multiplications ('c'). *)

val fig4_small : unit -> Mps_dfg.Dfg.t
(** The 5-node example of Fig. 4: a1→a2→{b4,b5}, a3→{b4,b5}. *)

val montium_capacity : int
(** C = 5 ALUs per Montium tile. *)

val montium_max_configs : int
(** The Montium allows at most 32 distinct patterns per application (§1). *)

val table1 : (string * (int * int * int)) list
(** Table 1 verbatim: node name ↦ (ASAP, ALAP, Height) for the 22 nodes the
    paper lists (c12 and c14 are absent there). *)

val table5 : (int * int array) list
(** Table 5 verbatim: span limit ↦ antichain counts for sizes 1..5, ordered
    as printed (limits 4 down to 0). *)

val table3_pattern_sets : (string list * int) list
(** Table 3 verbatim: the three 4-pattern sets (as pattern spellings) with
    the paper's resulting cycle counts. *)

val table7_3dft : (int * float * int) list
(** Table 7, 3DFT columns: Pdef ↦ (random average over 10 runs, selected). *)

val table7_5dft : (int * float * int) list
(** Table 7, 5DFT columns. *)

val section4_patterns : string * string
(** The §4.3 worked example's two given patterns: ("aabcc", "aaacc"). *)

val section4_cycles : int
(** Length of the §4.3 example schedule (Table 2 has 7 rows). *)

val table2 : (string * int) list
(** Table 2 verbatim, reduced to its tie-break-invariant content: per clock
    cycle, the color bag of the scheduled nodes (canonical pattern
    spelling) and the chosen pattern (1 or 2).  The paper's node-level
    trace differs from any reimplementation by the graph's mirror
    symmetry, but these bags and choices are symmetry-invariant and must
    match exactly. *)
