lib/workloads/kernels.mli: Mps_frontend
