lib/workloads/ofdm.mli: Mps_frontend
