lib/workloads/cordic.ml: List Mps_frontend
