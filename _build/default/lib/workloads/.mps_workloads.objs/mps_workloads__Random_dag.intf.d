lib/workloads/random_dag.mli: Mps_dfg
