lib/workloads/cordic.mli: Mps_frontend
