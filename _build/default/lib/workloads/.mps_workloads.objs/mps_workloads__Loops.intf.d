lib/workloads/loops.mli: Mps_scheduler
