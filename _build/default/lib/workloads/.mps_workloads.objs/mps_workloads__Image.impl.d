lib/workloads/image.ml: Array Fun List Mps_frontend Printf
