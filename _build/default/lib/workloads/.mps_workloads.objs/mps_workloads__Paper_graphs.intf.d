lib/workloads/paper_graphs.mli: Mps_dfg
