lib/workloads/loops.ml: List Mps_dfg Mps_scheduler Printf
