lib/workloads/ofdm.ml: Array Dft Float Fun List Mps_frontend Printf String
