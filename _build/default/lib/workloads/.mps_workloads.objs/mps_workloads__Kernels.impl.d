lib/workloads/kernels.ml: Array Float Fun List Mps_frontend Printf
