lib/workloads/sorting.mli: Mps_frontend
