lib/workloads/dft.mli: Mps_frontend
