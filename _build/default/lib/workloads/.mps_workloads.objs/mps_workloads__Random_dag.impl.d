lib/workloads/random_dag.ml: Array List Mps_dfg Mps_util
