lib/workloads/paper_graphs.ml: Mps_dfg
