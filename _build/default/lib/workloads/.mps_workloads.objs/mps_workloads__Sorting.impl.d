lib/workloads/sorting.ml: Array Float List Mps_frontend Printf
