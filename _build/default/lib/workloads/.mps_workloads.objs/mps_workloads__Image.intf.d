lib/workloads/image.mli: Mps_frontend
