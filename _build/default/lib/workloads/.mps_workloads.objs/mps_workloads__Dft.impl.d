lib/workloads/dft.ml: Array Float Fun List Mps_frontend Printf String
