module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Rng = Mps_util.Rng

type params = {
  layers : int;
  width : int;
  edge_prob : float;
  locality : int;
  palette : (Color.t * int) list;
}

let default_params =
  {
    layers = 6;
    width = 6;
    edge_prob = 0.4;
    locality = 2;
    palette =
      [ (Color.add, 14); (Color.sub, 4); (Color.mul, 6) ];
  }

let weighted_color rng palette total =
  let rec pick r = function
    | [] -> assert false
    | (c, w) :: rest -> if r < w then c else pick (r - w) rest
  in
  pick (Rng.int rng total) palette

let generate ?(params = default_params) ~seed () =
  let { layers; width; edge_prob; locality; palette } = params in
  if layers < 1 then invalid_arg "Random_dag.generate: layers < 1";
  if width < 1 then invalid_arg "Random_dag.generate: width < 1";
  if locality < 1 then invalid_arg "Random_dag.generate: locality < 1";
  if edge_prob < 0.0 || edge_prob > 1.0 then
    invalid_arg "Random_dag.generate: edge_prob outside [0,1]";
  if palette = [] then invalid_arg "Random_dag.generate: empty palette";
  List.iter
    (fun (_, w) -> if w <= 0 then invalid_arg "Random_dag.generate: non-positive weight")
    palette;
  let total_weight = List.fold_left (fun acc (_, w) -> acc + w) 0 palette in
  let rng = Rng.create ~seed in
  let builder = Dfg.Builder.create () in
  (* layer_nodes.(l) = ids in layer l *)
  let layer_nodes = Array.make layers [] in
  for l = 0 to layers - 1 do
    let w = Rng.int_in rng 1 width in
    layer_nodes.(l) <-
      List.init w (fun _ ->
          Dfg.Builder.add_node builder (weighted_color rng palette total_weight))
  done;
  for l = 1 to layers - 1 do
    let lo = max 0 (l - locality) in
    let candidates =
      List.concat (List.init (l - lo) (fun d -> layer_nodes.(lo + d)))
    in
    List.iter
      (fun dst ->
        let parents =
          List.filter (fun _ -> Rng.float rng 1.0 < edge_prob) candidates
        in
        let parents =
          (* Keep the DAG connected forward: at least one parent each. *)
          match parents with
          | [] -> [ Rng.choice_list rng candidates ]
          | ps -> ps
        in
        List.iter (fun src -> Dfg.Builder.add_edge builder src dst) parents)
      layer_nodes.(l)
  done;
  Dfg.Builder.build builder
