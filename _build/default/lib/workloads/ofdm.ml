module Expr = Mps_frontend.Expr
module Opcode = Mps_frontend.Opcode
module Lower = Mps_frontend.Lower

let clamp e =
  (* min(max(e, -1), 1) — the QPSK slicer. *)
  Expr.binop Opcode.Min (Expr.binop Opcode.Max e (Expr.const (-1.0))) (Expr.const 1.0)

let receiver ~n =
  let input k =
    ( Expr.var (Printf.sprintf "x%dr" k),
      Expr.var (Printf.sprintf "x%di" k) )
  in
  let spectrum = Dft.fft_expressions ~n ~input in
  let bindings =
    List.concat_map
      (fun k ->
        let xr, xi = spectrum.(k) in
        let hr = Expr.var (Printf.sprintf "h%dr" k)
        and hi = Expr.var (Printf.sprintf "h%di" k) in
        (* (xr + i xi)(hr + i hi) *)
        let er = Expr.((xr * hr) - (xi * hi)) in
        let ei = Expr.((xr * hi) + (xi * hr)) in
        [
          (Printf.sprintf "s%dr" k, clamp er);
          (Printf.sprintf "s%di" k, clamp ei);
        ])
      (List.init n Fun.id)
  in
  Lower.lower bindings

let clampf v = Float.min 1.0 (Float.max (-1.0) v)

let reference ~n ~samples ~channel =
  if Array.length samples <> n || Array.length channel <> n then
    invalid_arg "Ofdm.reference: length mismatch";
  let spectrum = Dft.reference ~n samples in
  Array.init n (fun k ->
      let xr, xi = spectrum.(k) and hr, hi = channel.(k) in
      (clampf ((xr *. hr) -. (xi *. hi)), clampf ((xr *. hi) +. (xi *. hr))))

let env ~samples ~channel name =
  let len = String.length name in
  if len < 3 then raise Not_found;
  let vec = match name.[0] with 'x' -> samples | 'h' -> channel | _ -> raise Not_found in
  let idx =
    match int_of_string_opt (String.sub name 1 (len - 2)) with
    | Some i when i >= 0 && i < Array.length vec -> i
    | _ -> raise Not_found
  in
  let re, im = vec.(idx) in
  match name.[len - 1] with 'r' -> re | 'i' -> im | _ -> raise Not_found

let output_symbols ~n outs =
  Array.init n (fun k ->
      let get suffix = List.assoc (Printf.sprintf "s%d%s" k suffix) outs in
      (get "r", get "i"))
