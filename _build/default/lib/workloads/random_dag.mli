(** Layered random DAG workloads for scaling benches and property tests.

    Nodes are placed on [layers] layers of width up to [width]; every edge
    goes from a layer to a strictly later one, guaranteeing acyclicity by
    construction.  Colors are drawn from a weighted palette, so a workload
    can mimic, say, the 3DFT's add-heavy mix.  Everything is driven by the
    deterministic {!Mps_util.Rng}, so a (params, seed) pair names a graph
    reproducibly. *)

type params = {
  layers : int;
  width : int;  (** Maximum nodes per layer; actual width is uniform 1..width. *)
  edge_prob : float;  (** Probability of an edge to each candidate parent. *)
  locality : int;
      (** Parents are drawn only from this many immediately preceding
          layers — small locality produces FFT-like short dependencies. *)
  palette : (Mps_dfg.Color.t * int) list;  (** Colors with integer weights. *)
}

val default_params : params
(** 6 layers, width 6, edge probability 0.4, locality 2, the paper's
    a/b/c palette weighted 14/4/6 like the 3DFT. *)

val generate : ?params:params -> seed:int -> unit -> Mps_dfg.Dfg.t
(** @raise Invalid_argument on non-positive layers/width/locality, an empty
    palette, non-positive weights, or [edge_prob] outside [0,1].  Every
    non-first-layer node receives at least one parent, so only layer-0
    nodes are sources. *)
