(** Bitonic sorting networks as data-flow graphs.

    A comparator is a min node ('h') plus a max node ('i'); the network is
    entirely comparators, giving a two-color workload whose structure is
    nothing like the DSP kernels — wide, shallow, perfectly regular — and
    whose correct output (sortedness) is an easy oracle for the end-to-end
    simulator tests. *)

val bitonic : n:int -> Mps_frontend.Program.t
(** Bitonic sorting network on [n] inputs ["x0"…]; outputs
    ["y0"…] in ascending order.  [n] must be a power of two ≥ 2.
    @raise Invalid_argument otherwise. *)

val comparator_count : n:int -> int
(** Comparators in the [n]-input network: n/2 · k·(k+1)/2 pairs for
    n = 2^k, two nodes each. *)
