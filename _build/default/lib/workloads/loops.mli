(** Streaming loop kernels: bodies plus loop-carried dependencies, ready
    for {!Mps_scheduler.Modulo} scheduling.

    Each constructor returns the loop and, where meaningful, the body's
    reference program for functional checks.  The interesting spread:

    - {!fir_stream} has no recurrence at all (II is purely resource-bound);
    - {!accumulator} carries one value at distance 1 (RecMII = chain);
    - {!iir_stream} carries two (the y[n−1], y[n−2] feedback of a biquad);
    - {!moving_average} carries a running sum — recurrence of latency 2 at
      distance 1. *)

type t = {
  loop : Mps_scheduler.Loop_graph.t;
  label : string;
  description : string;
}

val fir_stream : taps:int -> t
(** One output per iteration: [taps] multiplies into a balanced add tree;
    no carried edges. *)

val accumulator : width:int -> t
(** acc += x0·c0 + … per iteration: [width] MACs feeding one carried
    accumulator add (distance 1). *)

val iir_stream : unit -> t
(** One biquad step: 5 multiplies, 4 adds/subs; y feeds back at distances
    1 and 2. *)

val moving_average : window:int -> t
(** Running sum update s = s + x_new − x_old, then scale: the carried sum
    gives RecMII 2; [window] only affects the label. *)

val all : unit -> t list
(** The four above at representative sizes. *)
