(** CORDIC rotation — the shift-and-add workload.

    The classic fixed-point rotator: k iterations of
    x' = x − d·(y ≫ i), y' = y + d·(x ≫ i), z' = z − d·atan(2^-i), with the
    direction d chosen per iteration.  Since the lowered program is a
    straight-line DAG, the directions are baked in at generation time (as
    a host compiler would for a fixed rotation angle); the workload's value
    here is its color mix — shifts ('g') plus adds/subs — and its long,
    narrow dependence structure, the opposite extreme from the FFTs.

    Values are modeled as integers-in-floats (the shift opcodes truncate),
    matching the 16-bit Montium datapath. *)

val rotate : iterations:int -> directions:bool list -> Mps_frontend.Program.t
(** Inputs ["x"], ["y"]; outputs ["xr"], ["yr"].  [directions] gives d per
    iteration ([true] = counter-clockwise).
    @raise Invalid_argument if lengths disagree or [iterations < 1]. *)

val reference :
  iterations:int -> directions:bool list -> x:int -> y:int -> int * int
(** Bit-exact integer model of the same iteration. *)
