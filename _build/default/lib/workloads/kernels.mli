(** DSP and linear-algebra kernels beyond the paper's DFTs.

    The paper's introduction motivates the Montium with mobile
    signal-processing workloads; these generators provide that wider
    evaluation surface for the benches: FIR and IIR filtering, DCT, matrix
    multiplication and polynomial evaluation, all lowered through the
    expression frontend so they come with reference semantics. *)

val fir : taps:float list -> block:int -> Mps_frontend.Program.t
(** [fir ~taps ~block] computes y\[n\] = Σ_k taps(k)·x\[n−k\] for [block]
    consecutive outputs; inputs are ["x0"] … ["x{block+taps-2}"] (a sliding
    window, newest last), outputs ["y0"] … .
    @raise Invalid_argument on an empty tap list or [block < 1]. *)

val iir_biquad :
  b:float * float * float -> a:float * float -> block:int -> Mps_frontend.Program.t
(** Direct-form-I biquad unrolled over a block:
    y\[n\] = b0·x\[n\] + b1·x\[n−1\] + b2·x\[n−2\] − a1·y\[n−1\] − a2·y\[n−2\],
    with the initial histories as explicit inputs ["x_1"], ["x_2"],
    ["y_1"], ["y_2"].  The recurrence makes this graph much more serial
    than the FIR — a useful contrast for the schedulers.
    @raise Invalid_argument if [block < 1]. *)

val dct8 : unit -> Mps_frontend.Program.t
(** 8-point DCT-II, direct form; inputs ["x0"]…["x7"], outputs
    ["X0"]…["X7"]. *)

val matmul : m:int -> k:int -> n:int -> Mps_frontend.Program.t
(** Dense (m×k)·(k×n) product; inputs ["a_i_j"], ["b_i_j"], outputs
    ["c_i_j"].  @raise Invalid_argument on non-positive dimensions. *)

val horner : degree:int -> Mps_frontend.Program.t
(** Evaluates Σ c_i·x^i by Horner's rule — a maximally serial chain, the
    worst case for any parallel scheduler.  Inputs ["x"], ["c0"]…;
    output ["y"].  @raise Invalid_argument if [degree < 1]. *)

val fir_reference : taps:float list -> float array -> float array
(** Ground truth for {!fir} given the window (oldest first), one output per
    valid position. *)

val dct8_reference : float array -> float array
(** Ground truth for {!dct8}.  @raise Invalid_argument unless length 8. *)
