module Expr = Mps_frontend.Expr
module Opcode = Mps_frontend.Opcode
module Lower = Mps_frontend.Lower

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Classic recursive bitonic network over an array of expressions; each
   compare-exchange rewrites two lanes with min/max. *)
let bitonic ~n =
  if n < 2 || not (is_power_of_two n) then
    invalid_arg "Sorting.bitonic: n must be a power of two >= 2";
  let lanes = Array.init n (fun i -> Expr.var (Printf.sprintf "x%d" i)) in
  let compare_exchange i j ascending =
    let a = lanes.(i) and b = lanes.(j) in
    let lo = Expr.binop Opcode.Min a b and hi = Expr.binop Opcode.Max a b in
    if ascending then begin
      lanes.(i) <- lo;
      lanes.(j) <- hi
    end
    else begin
      lanes.(i) <- hi;
      lanes.(j) <- lo
    end
  in
  let rec merge lo len ascending =
    if len > 1 then begin
      let half = len / 2 in
      for i = lo to lo + half - 1 do
        compare_exchange i (i + half) ascending
      done;
      merge lo half ascending;
      merge (lo + half) half ascending
    end
  in
  let rec sort lo len ascending =
    if len > 1 then begin
      let half = len / 2 in
      sort lo half true;
      sort (lo + half) half false;
      merge lo len ascending
    end
  in
  sort 0 n true;
  let bindings =
    List.init n (fun i -> (Printf.sprintf "y%d" i, lanes.(i)))
  in
  Lower.lower bindings

let comparator_count ~n =
  if n < 2 || not (is_power_of_two n) then
    invalid_arg "Sorting.comparator_count: n must be a power of two >= 2";
  let k = int_of_float (Float.round (Float.log2 (float_of_int n))) in
  n / 2 * (k * (k + 1) / 2)
