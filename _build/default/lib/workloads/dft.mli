(** Discrete Fourier transform kernels.

    The paper evaluates on 3- and 5-point DFTs ("3DFT", "5DFT").  Its exact
    3DFT graph is in {!Paper_graphs}; this module generates DFT data-flow
    graphs for any size through the expression frontend, in two classical
    factorizations, so the 5DFT experiment has a concrete workload and the
    benches can sweep N.

    Complex values are split into real/imaginary parts; twiddle factors are
    constants folded into multiply instructions; products by 0 and ±1
    simplify away in the smart constructors, so small sizes produce the
    compact graphs one draws by hand. *)

val direct : n:int -> Mps_frontend.Program.t
(** Direct sum-of-products N-point DFT on complex inputs
    [x0r, x0i, …, x{N-1}r, x{N-1}i], outputs [X0r, X0i, …].
    @raise Invalid_argument if [n < 2]. *)

val winograd3 : unit -> Mps_frontend.Program.t
(** The 3-point Winograd DFT (the factorization behind Fig. 2's shape):
    u = 2π/3, t1 = x1+x2, m0 = x0+t1, m1 = (cos u − 1)·t1,
    m2 = i·sin u·(x2−x1), s1 = m0+m1, X0 = m0, X1 = s1+m2, X2 = s1−m2 —
    in real arithmetic. *)

val winograd5 : unit -> Mps_frontend.Program.t
(** The 5-point Winograd DFT: 17 complex additions and 6 constant
    multiplications — 45 real operations after the smart-constructor
    simplifications, the size class the paper's Table 7 cycle counts imply
    for its "5DFT" workload (a direct 5-point DFT would be ~136 operations
    and could never schedule in 15 cycles on 5 ALUs).  EXPERIMENTS.md
    documents this substitution. *)

val radix2_fft : n:int -> Mps_frontend.Program.t
(** Decimation-in-time radix-2 FFT; [n] must be a power of two ≥ 2.
    @raise Invalid_argument otherwise. *)

val fft_expressions :
  n:int ->
  input:(int -> Mps_frontend.Expr.t * Mps_frontend.Expr.t) ->
  (Mps_frontend.Expr.t * Mps_frontend.Expr.t) array
(** The radix-2 FFT as raw (real, imaginary) expression pairs over caller-
    supplied inputs — the composition point for larger signal chains (the
    OFDM receiver feeds these into an equalizer instead of binding them as
    outputs).  Same constraints as {!radix2_fft}. *)

val reference : n:int -> (float * float) array -> (float * float) array
(** Textbook O(N²) complex DFT used by the tests as ground truth for every
    generator above.  @raise Invalid_argument on a length mismatch. *)

val input_env : (float * float) array -> string -> float
(** Maps the generators' input naming convention ("x3r", "x3i") onto a
    complex input vector.  @raise Not_found for other names. *)

val output_spectrum : n:int -> (string * float) list -> (float * float) array
(** Collects ("X0r", …) outputs back into a complex vector.
    @raise Not_found if an expected output is missing. *)
