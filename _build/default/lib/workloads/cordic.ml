module Expr = Mps_frontend.Expr
module Opcode = Mps_frontend.Opcode
module Lower = Mps_frontend.Lower

let check ~iterations ~directions =
  if iterations < 1 then invalid_arg "Cordic.rotate: iterations < 1";
  if List.length directions <> iterations then
    invalid_arg "Cordic.rotate: directions length mismatch"

let rotate ~iterations ~directions =
  check ~iterations ~directions;
  let x = ref (Expr.var "x") and y = ref (Expr.var "y") in
  List.iteri
    (fun i d ->
      let shift e = Expr.binop Opcode.Shr e (Expr.const (float_of_int i)) in
      let xs = shift !x and ys = shift !y in
      let x' = if d then Expr.( - ) !x ys else Expr.( + ) !x ys in
      let y' = if d then Expr.( + ) !y xs else Expr.( - ) !y xs in
      x := x';
      y := y')
    directions;
  Lower.lower [ ("xr", !x); ("yr", !y) ]

let reference ~iterations ~directions ~x ~y =
  check ~iterations ~directions;
  let x = ref x and y = ref y in
  List.iteri
    (fun i d ->
      let xs = !x asr i and ys = !y asr i in
      let x' = if d then !x - ys else !x + ys in
      let y' = if d then !y + xs else !y - xs in
      x := x';
      y := y')
    directions;
  (!x, !y)
