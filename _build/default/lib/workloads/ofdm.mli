(** An OFDM receiver front end — the composite application the Montium was
    built for (the paper's introduction motivates the architecture with
    exactly this class of mobile baseband processing).

    The chain, per received symbol of [n] subcarriers:

    + {b FFT}: time samples → subcarrier values (composed from
      {!Dft.fft_expressions});
    + {b equalization}: each subcarrier multiplied by its channel
      coefficient Ĥ_k⁻¹ (inputs ["h<k>r"]/["h<k>i"]) — one complex multiply
      per carrier;
    + {b slicing}: hard clamping of each component to [−1, 1] (min/max
      operations — the 'h'/'i' colors), the QPSK decision variable.

    Everything is one {!Mps_frontend.Program.t}, so the whole receiver
    schedules, maps, and simulates like any kernel; outputs are
    ["s<k>r"]/["s<k>i"].  The value as a workload: it mixes five colors
    (a, b, c, h, i) with three structurally different stages, the hardest
    pattern-selection instance in the library. *)

val receiver : n:int -> Mps_frontend.Program.t
(** [n] a power of two ≥ 2.  Inputs: time samples ["x<j>r"]/["x<j>i"] and
    channel coefficients ["h<k>r"]/["h<k>i"].
    @raise Invalid_argument otherwise. *)

val reference :
  n:int ->
  samples:(float * float) array ->
  channel:(float * float) array ->
  (float * float) array
(** Independent float model: DFT ∘ complex multiply ∘ clamp.
    @raise Invalid_argument on length mismatches. *)

val env : samples:(float * float) array -> channel:(float * float) array -> string -> float
(** Input environment for {!receiver} over concrete vectors. *)

val output_symbols : n:int -> (string * float) list -> (float * float) array
(** Collect ["s<k>r"]/["s<k>i"] outputs.  @raise Not_found if missing. *)
