module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower
module Program = Mps_frontend.Program

(* Complex expressions as (real, imaginary) pairs.  Twiddle components pass
   through [round_small] so that values that are 0 or ±1 up to floating
   noise become exact and the smart constructors can simplify them. *)
module Cplx = struct
  type t = { re : Expr.t; im : Expr.t }

  let make re im = { re; im }
  let add a b = { re = Expr.(a.re + b.re); im = Expr.(a.im + b.im) }
  let sub a b = { re = Expr.(a.re - b.re); im = Expr.(a.im - b.im) }

  let mul a b =
    {
      re = Expr.((a.re * b.re) - (a.im * b.im));
      im = Expr.((a.re * b.im) + (a.im * b.re));
    }

  let round_small x =
    let candidates = [ 0.0; 1.0; -1.0; 0.5; -0.5 ] in
    match List.find_opt (fun c -> Float.abs (x -. c) < 1e-12 *. (1. +. Float.abs x)) candidates with
    | Some c -> c
    | None -> x

  let const re im = { re = Expr.const (round_small re); im = Expr.const (round_small im) }
  let input k = make (Expr.var (Printf.sprintf "x%dr" k)) (Expr.var (Printf.sprintf "x%di" k))

  let outputs k c =
    [ (Printf.sprintf "X%dr" k, c.re); (Printf.sprintf "X%di" k, c.im) ]
end

let twiddle ~n k =
  let angle = -2.0 *. Float.pi *. float_of_int k /. float_of_int n in
  Cplx.const (cos angle) (sin angle)

let direct ~n =
  if n < 2 then invalid_arg "Dft.direct: n must be >= 2";
  let xs = Array.init n Cplx.input in
  let bindings =
    List.concat_map
      (fun k ->
        let term j = Cplx.mul (twiddle ~n (k * j mod n)) xs.(j) in
        let sum =
          List.fold_left
            (fun acc j -> Cplx.add acc (term j))
            (term 0)
            (List.init (n - 1) (fun j -> j + 1))
        in
        Cplx.outputs k sum)
      (List.init n Fun.id)
  in
  Lower.lower bindings

let winograd3 () =
  let u = 2.0 *. Float.pi /. 3.0 in
  let c1 = cos u -. 1.0 and c2 = sin u in
  let x0 = Cplx.input 0 and x1 = Cplx.input 1 and x2 = Cplx.input 2 in
  let t1 = Cplx.add x1 x2 in
  let m0 = Cplx.add x0 t1 in
  let m1 = Cplx.mul (Cplx.const c1 0.0) t1 in
  let m2 = Cplx.mul (Cplx.const 0.0 c2) (Cplx.sub x2 x1) in
  let s1 = Cplx.add m0 m1 in
  let bindings =
    Cplx.outputs 0 m0
    @ Cplx.outputs 1 (Cplx.add s1 m2)
    @ Cplx.outputs 2 (Cplx.sub s1 m2)
  in
  Lower.lower bindings

let winograd5 () =
  let u = 2.0 *. Float.pi /. 5.0 in
  let x0 = Cplx.input 0
  and x1 = Cplx.input 1
  and x2 = Cplx.input 2
  and x3 = Cplx.input 3
  and x4 = Cplx.input 4 in
  let t1 = Cplx.add x1 x4 in
  let t2 = Cplx.add x2 x3 in
  let t3 = Cplx.sub x1 x4 in
  let t4 = Cplx.sub x3 x2 in
  let t5 = Cplx.add t1 t2 in
  let m0 = Cplx.add x0 t5 in
  let m1 = Cplx.mul (Cplx.const (((cos u +. cos (2.0 *. u)) /. 2.0) -. 1.0) 0.0) t5 in
  let m2 = Cplx.mul (Cplx.const ((cos u -. cos (2.0 *. u)) /. 2.0) 0.0) (Cplx.sub t1 t2) in
  (* The three imaginary-constant products implement the odd (sine) part. *)
  let m3 = Cplx.mul (Cplx.const 0.0 (-.sin u)) (Cplx.add t3 t4) in
  let m4 = Cplx.mul (Cplx.const 0.0 (-.(sin u +. sin (2.0 *. u)))) t4 in
  let m5 = Cplx.mul (Cplx.const 0.0 (sin u -. sin (2.0 *. u))) t3 in
  let s1 = Cplx.add m0 m1 in
  let s2 = Cplx.add s1 m2 in
  let s3 = Cplx.sub m3 m4 in
  let s4 = Cplx.sub s1 m2 in
  let s5 = Cplx.add m3 m5 in
  let bindings =
    Cplx.outputs 0 m0
    @ Cplx.outputs 1 (Cplx.add s2 s3)
    @ Cplx.outputs 2 (Cplx.add s4 s5)
    @ Cplx.outputs 3 (Cplx.sub s4 s5)
    @ Cplx.outputs 4 (Cplx.sub s2 s3)
  in
  Lower.lower bindings

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let fft_expressions ~n ~input =
  if n < 2 || not (is_power_of_two n) then
    invalid_arg "Dft.radix2_fft: n must be a power of two >= 2";
  (* Recursive DIT: values are complex expressions; lowering with CSE merges
     the shared subtransforms. *)
  let rec fft xs =
    let len = Array.length xs in
    if len = 1 then xs
    else begin
      let evens = fft (Array.init (len / 2) (fun i -> xs.(2 * i))) in
      let odds = fft (Array.init (len / 2) (fun i -> xs.((2 * i) + 1))) in
      let out = Array.make len evens.(0) in
      for k = 0 to (len / 2) - 1 do
        let t = Cplx.mul (twiddle ~n:len k) odds.(k) in
        out.(k) <- Cplx.add evens.(k) t;
        out.(k + (len / 2)) <- Cplx.sub evens.(k) t
      done;
      out
    end
  in
  let lanes = Array.init n (fun k -> let re, im = input k in Cplx.make re im) in
  Array.map (fun c -> (c.Cplx.re, c.Cplx.im)) (fft lanes)

let radix2_fft ~n =
  let input k =
    let c = Cplx.input k in
    (c.Cplx.re, c.Cplx.im)
  in
  let spectrum = fft_expressions ~n ~input in
  let bindings =
    List.concat_map
      (fun k ->
        let re, im = spectrum.(k) in
        Cplx.outputs k (Cplx.make re im))
      (List.init n Fun.id)
  in
  Lower.lower bindings

let reference ~n xs =
  if Array.length xs <> n then invalid_arg "Dft.reference: length mismatch";
  Array.init n (fun k ->
      let re = ref 0.0 and im = ref 0.0 in
      for j = 0 to n - 1 do
        let angle = -2.0 *. Float.pi *. float_of_int (k * j) /. float_of_int n in
        let c = cos angle and s = sin angle in
        let xr, xi = xs.(j) in
        re := !re +. ((xr *. c) -. (xi *. s));
        im := !im +. ((xr *. s) +. (xi *. c))
      done;
      (!re, !im))

let input_env xs name =
  let fail () = raise Not_found in
  let len = String.length name in
  if len < 3 || name.[0] <> 'x' then fail ()
  else begin
    let idx =
      match int_of_string_opt (String.sub name 1 (len - 2)) with
      | Some i when i >= 0 && i < Array.length xs -> i
      | _ -> fail ()
    in
    let re, im = xs.(idx) in
    match name.[len - 1] with 'r' -> re | 'i' -> im | _ -> fail ()
  end

let output_spectrum ~n outs =
  Array.init n (fun k ->
      let get suffix = List.assoc (Printf.sprintf "X%d%s" k suffix) outs in
      (get "r", get "i"))
