module Expr = Mps_frontend.Expr
module Lower = Mps_frontend.Lower

let check_kernel kernel =
  if Array.length kernel <> 3 || Array.exists (fun r -> Array.length r <> 3) kernel
  then invalid_arg "Image.convolve3x3: kernel must be 3x3"

let pixel r c = Expr.var (Printf.sprintf "p_%d_%d" r c)

let convolve3x3 ~kernel ~rows ~cols =
  check_kernel kernel;
  if rows < 1 || cols < 1 then invalid_arg "Image.convolve3x3: empty block";
  let bindings =
    List.concat_map
      (fun r ->
        List.init cols (fun c ->
            let terms =
              List.concat_map
                (fun dr ->
                  List.init 3 (fun dc ->
                      let w = kernel.(dr).(dc) in
                      let p = pixel (r + dr) (c + dc) in
                      Expr.(const w * p)))
                [ 0; 1; 2 ]
            in
            let sum =
              match terms with
              | first :: rest -> List.fold_left Expr.( + ) first rest
              | [] -> assert false
            in
            (Printf.sprintf "o_%d_%d" r c, sum)))
      (List.init rows Fun.id)
  in
  Lower.lower bindings

let sobel_x ~rows ~cols =
  convolve3x3
    ~kernel:[| [| -1.; 0.; 1. |]; [| -2.; 0.; 2. |]; [| -1.; 0.; 1. |] |]
    ~rows ~cols

let convolve3x3_reference ~kernel window =
  check_kernel kernel;
  let h = Array.length window in
  if h < 3 || Array.exists (fun r -> Array.length r <> Array.length window.(0)) window
  then invalid_arg "Image.convolve3x3_reference: ragged or tiny window";
  let w = Array.length window.(0) in
  if w < 3 then invalid_arg "Image.convolve3x3_reference: window too narrow";
  Array.init (h - 2) (fun r ->
      Array.init (w - 2) (fun c ->
          let acc = ref 0.0 in
          for dr = 0 to 2 do
            for dc = 0 to 2 do
              acc := !acc +. (kernel.(dr).(dc) *. window.(r + dr).(c + dc))
            done
          done;
          !acc))
