(** Image-processing workloads: 2-D convolution and separable filters.

    Montium-class CGRAs target exactly this kind of kernel (the paper's
    introduction motivates the architecture with mobile multimedia
    processing).  Pixels are named ["p_<row>_<col>"]; a convolution over an
    output block reads the input window the block needs. *)

val convolve3x3 : kernel:float array array -> rows:int -> cols:int -> Mps_frontend.Program.t
(** 3×3 convolution producing a [rows × cols] output block
    ["o_<r>_<c>"] from the [(rows+2) × (cols+2)] input window (top-left
    anchored: output (r,c) reads pixels (r..r+2, c..c+2)).
    @raise Invalid_argument unless the kernel is 3×3 and the block is
    positive. *)

val sobel_x : rows:int -> cols:int -> Mps_frontend.Program.t
(** The horizontal Sobel operator, [-1 0 1; -2 0 2; -1 0 1] — its zeros
    fold away, exercising the smart constructors on a famous kernel. *)

val convolve3x3_reference :
  kernel:float array array -> float array array -> float array array
(** Ground truth: full input window in, output block out.
    @raise Invalid_argument on a window smaller than 3×3. *)
