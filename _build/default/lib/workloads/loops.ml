module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Loop_graph = Mps_scheduler.Loop_graph

type t = {
  loop : Loop_graph.t;
  label : string;
  description : string;
}

let a = Color.add
let b = Color.sub
let c = Color.mul

let fir_stream ~taps =
  if taps < 1 then invalid_arg "Loops.fir_stream: taps < 1";
  let builder = Dfg.Builder.create () in
  let muls =
    List.init taps (fun i ->
        Dfg.Builder.add_node builder ~name:(Printf.sprintf "m%d" i) c)
  in
  (* Balanced reduction tree of adds. *)
  let rec reduce level nodes =
    match nodes with
    | [] -> ()
    | [ _ ] -> ()
    | _ ->
        let rec pair idx = function
          | x :: y :: rest ->
              let s =
                Dfg.Builder.add_node builder
                  ~name:(Printf.sprintf "s%d_%d" level idx)
                  a
              in
              Dfg.Builder.add_edge builder x s;
              Dfg.Builder.add_edge builder y s;
              s :: pair (idx + 1) rest
          | tail -> tail
        in
        reduce (level + 1) (pair 0 nodes)
  in
  reduce 0 muls;
  {
    loop = Loop_graph.make (Dfg.Builder.build builder) [];
    label = Printf.sprintf "fir%d" taps;
    description = "FIR step: independent multiplies into a balanced add tree";
  }

let accumulator ~width =
  if width < 1 then invalid_arg "Loops.accumulator: width < 1";
  let builder = Dfg.Builder.create () in
  let muls =
    List.init width (fun i ->
        Dfg.Builder.add_node builder ~name:(Printf.sprintf "m%d" i) c)
  in
  let acc = Dfg.Builder.add_node builder ~name:"acc" a in
  List.iter (fun m -> Dfg.Builder.add_edge builder m acc) muls;
  {
    loop =
      Loop_graph.make
        (Dfg.Builder.build builder)
        [ { Loop_graph.src = acc; dst = acc; distance = 1 } ];
    label = Printf.sprintf "acc%d" width;
    description = "MAC accumulator: carried sum at distance 1";
  }

let iir_stream () =
  (* y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2, with y1/y2 the previous two
     outputs: the adds combining the feedback terms carry to themselves. *)
  let g =
    Dfg.of_alist
      [
        ("m_b0", c); ("m_b1", c); ("m_b2", c); ("m_a1", c); ("m_a2", c);
        ("s_ff1", a); ("s_ff2", a); ("s_fb", a); ("y", b);
      ]
      [
        ("m_b0", "s_ff1"); ("m_b1", "s_ff1");
        ("m_b2", "s_ff2"); ("s_ff1", "s_ff2");
        ("m_a1", "s_fb"); ("m_a2", "s_fb");
        ("s_ff2", "y"); ("s_fb", "y");
      ]
  in
  let id name = Dfg.find g name in
  {
    loop =
      Loop_graph.make g
        [
          (* y feeds next iteration's m_a1 and the one after's m_a2. *)
          { Loop_graph.src = id "y"; dst = id "m_a1"; distance = 1 };
          { Loop_graph.src = id "y"; dst = id "m_a2"; distance = 2 };
        ];
    label = "iir-biquad";
    description = "biquad step with two-deep output feedback";
  }

let moving_average ~window =
  if window < 2 then invalid_arg "Loops.moving_average: window < 2";
  (* s' = s + x_new - x_old; y = s' * (1/window). *)
  let g =
    Dfg.of_alist
      [ ("add_new", a); ("sub_old", b); ("scale", c) ]
      [ ("add_new", "sub_old"); ("sub_old", "scale") ]
  in
  let id name = Dfg.find g name in
  {
    loop =
      Loop_graph.make g
        [ { Loop_graph.src = id "sub_old"; dst = id "add_new"; distance = 1 } ];
    label = Printf.sprintf "mavg%d" window;
    description = "moving average: carried running sum";
  }

let all () =
  [ fir_stream ~taps:8; accumulator ~width:4; iir_stream (); moving_average ~window:8 ]
