(** Deterministic pseudo-random number generation.

    All randomized components of the reproduction (random pattern baselines,
    random DAG workloads, property-test corpora) draw from this module so that
    every experiment is replayable from a single integer seed.

    The generator is xoshiro256** (Blackman & Vigna), seeded through
    splitmix64, both implemented on OCaml's 63-bit native [int] arithmetic
    with explicit 64-bit masking.  The statistical quality is far beyond what
    the experiments need; the point is determinism and independence of the
    OCaml stdlib's unspecified [Random] evolution across compiler versions. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from any integer seed.  Equal seeds
    yield equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t].  Use it to give each experiment arm its own stream so that
    adding draws to one arm does not perturb another. *)

val copy : t -> t
(** [copy t] is an independent snapshot of [t]'s current state; the copy and
    the original then produce identical streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output word. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on [||]. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Persistent shuffle of a list. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [k] distinct positions of
    [arr] uniformly.  @raise Invalid_argument if [k < 0] or
    [k > Array.length arr]. *)
