(** Minimal CSV writing — the bench harness exports its tables for external
    plotting.

    RFC-4180-style quoting: fields containing commas, quotes or newlines
    are wrapped in double quotes with inner quotes doubled; everything else
    is written bare.  No parsing — this repository only produces CSVs. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument on width mismatch with the header. *)

val render : t -> string

val save : path:string -> t -> unit

val of_table_rows : header:string list -> string list list -> t
(** Convenience for dumping rows collected elsewhere. *)
