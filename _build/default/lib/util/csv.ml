type t = { header : string list; mutable rows : string list list (* reversed *) }

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Csv.add_row: row width mismatch";
  t.rows <- row :: t.rows

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render t =
  let line row = String.concat "," (List.map field row) ^ "\n" in
  String.concat "" (line t.header :: List.rev_map line t.rows)

let save ~path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render t))

let of_table_rows ~header rows =
  let t = create ~header in
  List.iter (add_row t) rows;
  t
