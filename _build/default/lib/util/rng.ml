(* xoshiro256** seeded via splitmix64.  All arithmetic is done on int64 to be
   independent of the platform int width. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* Seed a fresh splitmix chain from the parent stream: derived generators
     are decorrelated from the parent's subsequent output. *)
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* Lemire-style rejection sampling on the top bits for an unbiased bounded
   draw.  [bound] fits in an OCaml int, so 62 random bits are plenty. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    if r < bound then r else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform mantissa bits. *)
  let x = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (x /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle_in_place t arr;
  Array.to_list arr

let sample_without_replacement t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let idx = Array.init n (fun i -> i) in
  (* Partial Fisher–Yates: only the first k slots need settling. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.init k (fun i -> arr.(idx.(i)))
