type align = Left | Right | Center

type line = Row of string list | Separator

type t = {
  header : string list;
  aligns : align list;
  mutable lines : line list; (* reversed *)
}

let create ?aligns ~header () =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> ncols then
          invalid_arg "Ascii_table.create: aligns width mismatch";
        a
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  { header; aligns; lines = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Ascii_table.add_row: row width mismatch";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (function
      | Separator -> ()
      | Row cells ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row ?(aligns = t.aligns) cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  rule ();
  emit_row ~aligns:(List.map (fun _ -> Center) t.header) t.header;
  rule ();
  List.iter (function Separator -> rule () | Row cells -> emit_row cells) rows;
  rule ();
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
let print t = print_string (render t)
