(** Plain-text table rendering for the bench harness and examples.

    The reproduction prints each of the paper's tables side by side with the
    measured values; this module renders those as aligned, boxed ASCII
    tables on any [Format] formatter. *)

type align = Left | Right | Center

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** [create ~header ()] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest — the common shape for
    "label, numbers…" experiment rows.  If given, it must have one entry per
    header column. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string

val pp : Format.formatter -> t -> unit

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
