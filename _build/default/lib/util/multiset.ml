module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool
  val cardinal : t -> int
  val support_size : t -> int
  val count : elt -> t -> int
  val mem : elt -> t -> bool
  val add : ?times:int -> elt -> t -> t
  val remove : ?times:int -> elt -> t -> t
  val of_list : elt list -> t
  val to_list : t -> elt list
  val to_counted_list : t -> (elt * int) list
  val support : t -> elt list
  val union : t -> t -> t
  val sum : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val fold : (elt -> int -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val iter : (elt -> int -> unit) -> t -> unit
  val for_all : (elt -> int -> bool) -> t -> bool
  val exists : (elt -> int -> bool) -> t -> bool
  val pp : (Format.formatter -> elt -> unit) -> Format.formatter -> t -> unit
end

module Make (Ord : ORDERED) : S with type elt = Ord.t = struct
  module M = Map.Make (Ord)

  type elt = Ord.t

  (* Invariant: every stored multiplicity is >= 1. *)
  type t = int M.t

  let empty = M.empty
  let is_empty = M.is_empty
  let count x m = match M.find_opt x m with Some c -> c | None -> 0
  let mem x m = M.mem x m
  let cardinal m = M.fold (fun _ c acc -> acc + c) m 0
  let support_size m = M.cardinal m

  let add ?(times = 1) x m =
    if times < 0 then invalid_arg "Multiset.add: negative times";
    if times = 0 then m else M.add x (count x m + times) m

  let remove ?(times = 1) x m =
    if times < 0 then invalid_arg "Multiset.remove: negative times";
    let c = count x m - times in
    if c > 0 then M.add x c m else M.remove x m

  let of_list l = List.fold_left (fun m x -> add x m) empty l

  let to_list m =
    M.fold (fun x c acc -> List.rev_append (List.init c (fun _ -> x)) acc) m []
    |> List.rev

  let to_counted_list m = M.bindings m
  let support m = List.map fst (M.bindings m)

  let merge_counts f a b =
    M.merge
      (fun _ ca cb ->
        let c = f (Option.value ca ~default:0) (Option.value cb ~default:0) in
        if c > 0 then Some c else None)
      a b

  let union a b = merge_counts max a b
  let sum a b = merge_counts ( + ) a b
  let inter a b = merge_counts min a b
  let diff a b = merge_counts (fun ca cb -> max 0 (ca - cb)) a b
  let subset a b = M.for_all (fun x c -> c <= count x b) a
  let equal a b = M.equal Int.equal a b
  let compare a b = M.compare Int.compare a b
  let fold f m acc = M.fold f m acc
  let iter f m = M.iter f m
  let for_all f m = M.for_all f m
  let exists f m = M.exists f m

  let pp pp_elt ppf m =
    let elems = to_list m in
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_elt)
      elems
end
