module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type t = { mutable data : Ord.t array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let length t = t.size
  let is_empty t = t.size = 0

  let grow t x =
    (* [x] is only used as a filler value for fresh slots. *)
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = max 8 (2 * cap) in
      let ndata = Array.make ncap x in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if Ord.compare t.data.(i) t.data.(parent) < 0 then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && Ord.compare t.data.(l) t.data.(!smallest) < 0 then smallest := l;
    if r < t.size && Ord.compare t.data.(r) t.data.(!smallest) < 0 then smallest := r;
    if !smallest <> i then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      sift_down t !smallest
    end

  let add t x =
    grow t x;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let min_elt t = if t.size = 0 then None else Some t.data.(0)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.data.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        sift_down t 0
      end;
      Some top
    end

  let of_list l =
    let t = create () in
    List.iter (add t) l;
    t

  let drain t =
    let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
    go []

  let to_sorted_list t =
    let snapshot = { data = Array.sub t.data 0 t.size; size = t.size } in
    drain snapshot
end
