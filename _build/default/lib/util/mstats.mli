(** Small descriptive-statistics toolbox for the experiment harness.

    Table 7 of the paper reports the mean of ten random-pattern runs; the
    extended benches additionally report spread, so the harness can show
    whether "selected beats random" clears the noise. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val mean_int : int array -> float

val variance : float array -> float
(** Unbiased sample variance (n−1 denominator); 0 for singleton input.
    @raise Invalid_argument on an empty array. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** @raise Invalid_argument on an empty array. *)

val median : float array -> float
(** Does not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation between
    order statistics.  @raise Invalid_argument if out of range or empty. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] partitions [min,max] into equal bins and returns
    [(lo, hi, count)] per bin.  @raise Invalid_argument if [bins <= 0] or
    [xs] is empty. *)
