let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Mstats.%s: empty input" name)

let mean xs =
  require_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let mean_int xs = mean (Array.map float_of_int xs)

let variance xs =
  require_nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sq /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  require_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort Float.compare ys;
  ys

let percentile xs p =
  require_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Mstats.percentile: p out of [0,100]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let median xs = percentile xs 50.0

let histogram ~bins xs =
  require_nonempty "histogram" xs;
  if bins <= 0 then invalid_arg "Mstats.histogram: bins <= 0";
  let lo, hi = min_max xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = min (max b 0) (bins - 1) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.init bins (fun b ->
      let blo = lo +. (float_of_int b *. width) in
      (blo, blo +. width, counts.(b)))
