(** Dense, fixed-universe bitsets.

    The antichain enumerator (paper §5.1) walks millions of candidate node
    sets; it represents "the set of nodes parallelizable with everything
    chosen so far" as a bitset over node ids and refines it by intersection.
    This module is the imperative kernel behind that walk: sets over the
    universe [0 .. universe-1] packed into an int array, with O(words)
    bulk operations. *)

type t

val create : int -> t
(** [create universe] is the empty set over [0 .. universe-1].
    @raise Invalid_argument if [universe < 0]. *)

val universe : t -> int
(** Size of the universe the set was created over. *)

val full : int -> t
(** [full universe] contains every element of the universe. *)

val copy : t -> t
val clear : t -> unit

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool

(** Out-of-range elements raise [Invalid_argument] in the three functions
    above. *)

val cardinal : t -> int

val is_empty : t -> bool

val equal : t -> t -> bool

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] replaces [dst] with [dst ∩ src].
    @raise Invalid_argument on universe mismatch (as for all binary ops). *)

val union_into : dst:t -> t -> unit
val diff_into : dst:t -> t -> unit

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val subset : t -> t -> bool

val iter : (int -> unit) -> t -> unit
(** Iterates elements in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list

val first_from : t -> int -> int option
(** [first_from t i] is the smallest member ≥ [i], if any.  The enumerator
    uses it to walk candidates in increasing order without scanning bits one
    by one. *)

val of_list : int -> int list -> t
(** [of_list universe elems]. *)

val pp : Format.formatter -> t -> unit
