lib/util/csv.mli:
