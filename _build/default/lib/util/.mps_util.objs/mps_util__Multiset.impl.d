lib/util/multiset.ml: Format Int List Map Option
