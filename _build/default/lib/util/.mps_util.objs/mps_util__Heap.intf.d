lib/util/heap.mli:
