lib/util/rng.mli:
