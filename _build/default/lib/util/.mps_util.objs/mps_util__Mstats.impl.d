lib/util/mstats.ml: Array Float Printf
