lib/util/mstats.mli:
