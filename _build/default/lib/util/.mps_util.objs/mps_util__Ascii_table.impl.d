lib/util/ascii_table.ml: Array Buffer Format List String
