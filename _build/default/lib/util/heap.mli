(** Imperative binary min-heaps, as a functor over the element order.

    Used by the list schedulers (candidate lists ordered by node priority)
    and by the force-directed baseline (lowest-force operation first).  For a
    max-priority order, instantiate with the reversed comparison. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type t

  val create : unit -> t
  val length : t -> int
  val is_empty : t -> bool
  val add : t -> Ord.t -> unit

  val min_elt : t -> Ord.t option
  (** Smallest element without removing it. *)

  val pop : t -> Ord.t option
  (** Removes and returns the smallest element.  Ties are broken
      arbitrarily but deterministically (heap order). *)

  val of_list : Ord.t list -> t

  val to_sorted_list : t -> Ord.t list
  (** Non-destructive: elements in increasing order. *)

  val drain : t -> Ord.t list
  (** Destructive: pops everything, increasing order; the heap ends empty. *)
end
