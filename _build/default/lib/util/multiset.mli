(** Finite multisets (bags) over a totally ordered element type.

    The paper's central object — a {e pattern} — is "a bag of C elements"
    (§3).  This module provides the persistent multiset the pattern algebra
    is built on: counted membership, inclusion (the subpattern relation),
    sum, difference, and canonical ordered enumeration. *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module type S = sig
  type elt
  type t

  val empty : t
  val is_empty : t -> bool

  val cardinal : t -> int
  (** Total number of elements counted with multiplicity. *)

  val support_size : t -> int
  (** Number of distinct elements. *)

  val count : elt -> t -> int
  (** Multiplicity of an element (0 if absent). *)

  val mem : elt -> t -> bool

  val add : ?times:int -> elt -> t -> t
  (** [add ?times x m] inserts [times] copies (default 1).
      @raise Invalid_argument if [times < 0]. *)

  val remove : ?times:int -> elt -> t -> t
  (** [remove ?times x m] deletes up to [times] copies (default 1); removing
      from an element with fewer copies clamps at zero. *)

  val of_list : elt list -> t
  val to_list : t -> elt list
  (** Elements in increasing order, repeated per multiplicity. *)

  val to_counted_list : t -> (elt * int) list
  (** Distinct elements in increasing order with their multiplicities. *)

  val support : t -> elt list
  (** Distinct elements in increasing order. *)

  val union : t -> t -> t
  (** Pointwise max of multiplicities. *)

  val sum : t -> t -> t
  (** Pointwise sum of multiplicities. *)

  val inter : t -> t -> t
  (** Pointwise min of multiplicities. *)

  val diff : t -> t -> t
  (** Pointwise truncated difference. *)

  val subset : t -> t -> bool
  (** [subset a b] iff every multiplicity in [a] is ≤ the one in [b]:
      the subpattern relation. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int

  val fold : (elt -> int -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  (** Folds over distinct elements with multiplicities, increasing order. *)

  val iter : (elt -> int -> unit) -> t -> unit
  val for_all : (elt -> int -> bool) -> t -> bool
  val exists : (elt -> int -> bool) -> t -> bool

  val pp : (Format.formatter -> elt -> unit) -> Format.formatter -> t -> unit
end

module Make (Ord : ORDERED) : S with type elt = Ord.t
