(* Bits are packed into OCaml native ints, word_bits per array cell.  The
   last word's unused high bits are kept at zero so cardinal/equal can work
   word-wise without masking. *)

let word_bits = Sys.int_size

type t = { words : int array; universe : int }

let words_for n = (n + word_bits - 1) / word_bits

let create universe =
  if universe < 0 then invalid_arg "Bitset.create: negative universe";
  { words = Array.make (words_for universe) 0; universe }

let universe t = t.universe

let full n =
  let t = create n in
  let nwords = Array.length t.words in
  if nwords > 0 then begin
    Array.fill t.words 0 nwords (-1);
    let rem = n mod word_bits in
    if rem <> 0 then t.words.(nwords - 1) <- (1 lsl rem) - 1
  end;
  t

let copy t = { t with words = Array.copy t.words }
let clear t = Array.fill t.words 0 (Array.length t.words) 0

let check t i =
  if i < 0 || i >= t.universe then
    invalid_arg (Printf.sprintf "Bitset: element %d out of universe [0,%d)" i t.universe)

let add t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

let remove t i =
  check t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

let mem t i =
  check t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words

let same_universe a b =
  if a.universe <> b.universe then invalid_arg "Bitset: universe mismatch"

let equal a b =
  same_universe a b;
  a.words = b.words

let inter_into ~dst src =
  same_universe dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let union_into ~dst src =
  same_universe dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_into ~dst src =
  same_universe dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let inter a b =
  let r = copy a in
  inter_into ~dst:r b;
  r

let union a b =
  let r = copy a in
  union_into ~dst:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~dst:r b;
  r

let subset a b =
  same_universe a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let lowest_bit w =
  (* Index of the least significant set bit of a nonzero word. *)
  let rec go w i = if w land 1 = 1 then i else go (w lsr 1) (i + 1) in
  go w 0

let first_from t i =
  if i >= t.universe then None
  else begin
    let i = max i 0 in
    let rec scan_word wi carry_mask =
      if wi >= Array.length t.words then None
      else
        let w = t.words.(wi) land carry_mask in
        if w <> 0 then Some ((wi * word_bits) + lowest_bit w)
        else scan_word (wi + 1) (-1)
    in
    let wi = i / word_bits in
    scan_word wi (-1 lsl (i mod word_bits))
  end

let iter f t =
  let rec go i =
    match first_from t i with
    | None -> ()
    | Some j ->
        f j;
        go (j + 1)
  in
  go 0

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n elems =
  let t = create n in
  List.iter (add t) elems;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements t)
