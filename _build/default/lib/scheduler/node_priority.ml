module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Bitset = Mps_util.Bitset

type t = { values : int array; keys : (int * int * int) array; s : int; t : int }

let compute g reach levels =
  let n = Dfg.node_count g in
  let direct = Array.init n (Dfg.out_degree g) in
  let all = Array.init n (fun i -> Bitset.cardinal (Reachability.descendants reach i)) in
  let height = Array.init n (Levels.height levels) in
  let max_all = Array.fold_left max 0 all in
  let t_param = max_all + 1 in
  let max_mix = ref 0 in
  for i = 0 to n - 1 do
    max_mix := max !max_mix ((t_param * direct.(i)) + all.(i))
  done;
  let s_param = !max_mix + 1 in
  let values =
    Array.init n (fun i -> (s_param * height.(i)) + (t_param * direct.(i)) + all.(i))
  in
  let keys = Array.init n (fun i -> (height.(i), direct.(i), all.(i))) in
  { values; keys; s = s_param; t = t_param }

let s_param p = p.s
let t_param p = p.t

let get arr i =
  if i < 0 || i >= Array.length arr then
    invalid_arg (Printf.sprintf "Node_priority: node id %d out of range" i);
  arr.(i)

let value p i = get p.values i
let key p i = get p.keys i

let compare_desc p i j =
  match compare (value p j) (value p i) with 0 -> compare i j | c -> c

let sort p l = List.sort (compare_desc p) l
