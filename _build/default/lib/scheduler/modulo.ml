module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern

type t = {
  ii : int;
  starts : int array;
  slot_patterns : Pattern.t array;
  makespan : int;
}

exception No_schedule of { tried_up_to : int }

(* Covering pattern for a color bag, if any. *)
let covering patterns bag =
  List.find_opt (fun p -> Pattern.subpattern bag ~of_:p) patterns

let check_colors patterns g =
  let missing =
    List.filter
      (fun (c, _) -> not (List.exists (fun p -> Pattern.mem p c) patterns))
      (Dfg.color_counts g)
  in
  if missing <> [] then
    raise (Multi_pattern.Unschedulable (List.map fst missing))

(* One II attempt of iterative modulo scheduling.  Returns the start array
   on success. *)
let attempt ~budget loop patterns ii =
  let g = Loop_graph.body loop in
  let n = Dfg.node_count g in
  let levels = Levels.compute g in
  (* Priority: body height, then id — deterministic. *)
  let priority i = (-Levels.height levels i, i) in
  let starts = Array.make n (-1) in
  let slot_bag = Array.make ii Pattern.empty in
  (* All dependence constraints as (u, v, weight) meaning
     start(v) >= start(u) + weight. *)
  let in_constraints = Array.make n [] in
  let out_constraints = Array.make n [] in
  let add_constraint u v w =
    in_constraints.(v) <- (u, w) :: in_constraints.(v);
    out_constraints.(u) <- (v, w) :: out_constraints.(u)
  in
  Dfg.iter_edges (fun u v -> add_constraint u v 1) g;
  List.iter
    (fun { Loop_graph.src; dst; distance } ->
      add_constraint src dst (1 - (ii * distance)))
    (Loop_graph.carried loop);
  let earliest v =
    List.fold_left
      (fun acc (u, w) -> if starts.(u) >= 0 then max acc (starts.(u) + w) else acc)
      0 in_constraints.(v)
  in
  let unschedule i =
    slot_bag.(starts.(i) mod ii) <-
      Pattern.remove slot_bag.(starts.(i) mod ii) (Dfg.color g i);
    starts.(i) <- -1
  in
  let place i c =
    starts.(i) <- c;
    slot_bag.(c mod ii) <- Pattern.add slot_bag.(c mod ii) (Dfg.color g i)
  in
  let module Pq = Mps_util.Heap.Make (struct
    type t = (int * int) * int (* priority key, node *)

    let compare ((k1, _) : t) ((k2, _) : t) = compare k1 k2
  end) in
  let queue = Pq.create () in
  Dfg.iter_nodes (fun i -> Pq.add queue (priority i, i)) g;
  let prev_start = Array.make n min_int in
  let budget = ref budget in
  let ok = ref true in
  let rec drain () =
    match Pq.pop queue with
    | None -> ()
    | Some (_, i) ->
        if !budget <= 0 then ok := false
        else begin
          decr budget;
          let est = earliest i in
          let color = Dfg.color g i in
          (* Search an II-wide window for a slot with room. *)
          let placed = ref false in
          let c = ref est in
          while (not !placed) && !c < est + ii do
            let bag = Pattern.add slot_bag.(!c mod ii) color in
            if covering patterns bag <> None then begin
              place i !c;
              placed := true
            end
            else incr c
          done;
          if not !placed then begin
            (* Rau's forced placement: never repeat the previous spot, so
               the search keeps moving instead of thrashing in place. *)
            let forced =
              if prev_start.(i) = min_int || est > prev_start.(i) then est
              else prev_start.(i) + 1
            in
            (* Evict the least-critical same-slot colliders until the slot
               fits this color (evicting everything always suffices:
               check_colors guaranteed a pattern with this color). *)
            let slot = forced mod ii in
            let colliders =
              Dfg.fold_nodes
                (fun j acc ->
                  if j <> i && starts.(j) >= 0 && starts.(j) mod ii = slot then j :: acc
                  else acc)
                g []
              |> List.sort (fun x y -> compare (priority y) (priority x))
              (* least critical first: priority keys sort ascending by
                 criticality, so reverse *)
            in
            let rec evict_until = function
              | [] -> ()
              | j :: rest ->
                  let bag = Pattern.add slot_bag.(slot) color in
                  if covering patterns bag <> None then ()
                  else begin
                    unschedule j;
                    Pq.add queue (priority j, j);
                    evict_until rest
                  end
            in
            evict_until colliders;
            place i forced
          end;
          prev_start.(i) <- starts.(i);
          (* Dependence repair: neighbours whose constraints now break get
             evicted (successors via out-constraints, and predecessors that
             carried edges may bound from above). *)
          List.iter
            (fun (v, w) ->
              if v <> i && starts.(v) >= 0 && starts.(v) < starts.(i) + w then begin
                unschedule v;
                Pq.add queue (priority v, v)
              end)
            out_constraints.(i);
          List.iter
            (fun (u, w) ->
              if u <> i && starts.(u) >= 0 && starts.(i) < starts.(u) + w then begin
                unschedule u;
                Pq.add queue (priority u, u)
              end)
            in_constraints.(i);
          drain ()
        end
  in
  drain ();
  if !ok && Array.for_all (fun s -> s >= 0) starts then Some starts else None

let schedule ?max_ii ?(budget_factor = 8) ~patterns loop =
  if patterns = [] then invalid_arg "Modulo.schedule: no patterns";
  if budget_factor < 1 then invalid_arg "Modulo.schedule: budget_factor < 1";
  let g = Loop_graph.body loop in
  check_colors patterns g;
  let n = Dfg.node_count g in
  let max_ii =
    match max_ii with
    | None -> max 1 n
    | Some m when m < 1 -> invalid_arg "Modulo.schedule: max_ii < 1"
    | Some m -> m
  in
  let mii = Loop_graph.mii loop ~patterns in
  if mii > max_ii then raise (No_schedule { tried_up_to = max_ii });
  let rec try_ii ii =
    if ii > max_ii then raise (No_schedule { tried_up_to = max_ii })
    else
      match attempt ~budget:(budget_factor * n) loop patterns ii with
      | Some starts ->
          let slot_bags = Array.make ii Pattern.empty in
          Array.iteri
            (fun i s ->
              slot_bags.(s mod ii) <- Pattern.add slot_bags.(s mod ii) (Dfg.color g i))
            starts;
          let slot_patterns =
            Array.map
              (fun bag ->
                match covering patterns bag with
                | Some p -> p
                | None -> assert false)
              slot_bags
          in
          let makespan = 1 + Array.fold_left max (-1) starts in
          { ii; starts; slot_patterns; makespan }
      | None -> try_ii (ii + 1)
  in
  try_ii mii

let validate ~patterns loop t =
  let g = Loop_graph.body loop in
  let n = Dfg.node_count g in
  let exception Bad of string in
  try
    if Array.length t.starts <> n then raise (Bad "start array length mismatch");
    Array.iteri (fun i s -> if s < 0 then raise (Bad (Printf.sprintf "node %d unplaced" i))) t.starts;
    Dfg.iter_edges
      (fun u v ->
        if t.starts.(v) < t.starts.(u) + 1 then
          raise
            (Bad
               (Printf.sprintf "intra-iteration dependence %s -> %s violated"
                  (Dfg.name g u) (Dfg.name g v))))
      g;
    List.iter
      (fun { Loop_graph.src; dst; distance } ->
        if t.starts.(dst) < t.starts.(src) + 1 - (t.ii * distance) then
          raise
            (Bad
               (Printf.sprintf "carried dependence %s -> %s (distance %d) violated"
                  (Dfg.name g src) (Dfg.name g dst) distance)))
      (Loop_graph.carried loop);
    let slot_bags = Array.make t.ii Pattern.empty in
    Array.iteri
      (fun i s ->
        slot_bags.(s mod t.ii) <- Pattern.add slot_bags.(s mod t.ii) (Dfg.color g i))
      t.starts;
    Array.iteri
      (fun s bag ->
        if not (Pattern.subpattern bag ~of_:t.slot_patterns.(s)) then
          raise (Bad (Printf.sprintf "slot %d load exceeds its pattern" s));
        if not (List.exists (Pattern.equal t.slot_patterns.(s)) patterns) then
          raise (Bad (Printf.sprintf "slot %d pattern not allowed" s)))
      slot_bags;
    Ok ()
  with Bad m -> Error m

let to_unrolled ~iterations loop t =
  if iterations < 1 then invalid_arg "Modulo.to_unrolled: iterations < 1";
  let g = Loop_graph.body loop in
  let n = Dfg.node_count g in
  let builder = Dfg.Builder.create () in
  for iter = 0 to iterations - 1 do
    Dfg.iter_nodes
      (fun i ->
        ignore
          (Dfg.Builder.add_node builder
             ~name:(Printf.sprintf "%s@%d" (Dfg.name g i) iter)
             (Dfg.color g i)))
      g
  done;
  let id iter i = (iter * n) + i in
  for iter = 0 to iterations - 1 do
    Dfg.iter_edges (fun u v -> Dfg.Builder.add_edge builder (id iter u) (id iter v)) g;
    List.iter
      (fun { Loop_graph.src; dst; distance } ->
        if iter + distance < iterations then
          Dfg.Builder.add_edge builder (id iter src) (id (iter + distance) dst))
      (Loop_graph.carried loop)
  done;
  let flat = Dfg.Builder.build builder in
  let cycles =
    Array.init (iterations * n) (fun k ->
        let iter = k / n and i = k mod n in
        t.starts.(i) + (t.ii * iter))
  in
  let total_cycles = Array.fold_left (fun acc c -> max acc (c + 1)) 0 cycles in
  let patterns =
    Array.init total_cycles (fun c -> t.slot_patterns.(c mod t.ii))
  in
  (flat, Schedule.of_cycles ~patterns flat cycles)
