(** Exact multi-pattern scheduling by branch and bound.

    The paper's scheduler (§4) is a greedy list heuristic; this module
    computes, for small graphs, the true optimum it is chasing: the
    minimum number of cycles over {e all} schedules legal under the given
    patterns.  The search runs breadth-first over sets of completed
    operations (one layer per clock cycle) with three sound reductions:

    - {e maximal selections}: with unit latencies and per-cycle resources,
      scheduling a superset of operations in a cycle never hurts, so only
      per-color-maximal selected sets are branched on;
    - {e state dedup}: two prefixes completing the same operation set are
      interchangeable, so layers are sets of bitmasks;
    - {e lower-bound pruning}: a state whose depth plus
      max(critical path of the remainder, ⌈remaining/capacity⌉-ish color
      bound) reaches the incumbent (initialized from the list scheduler)
      is cut.

    Complexity is exponential in the worst case — the state cap turns the
    search into an anytime algorithm that reports whether the result is
    proven optimal. *)

type outcome = {
  schedule : Schedule.t;
  cycles : int;
  proven_optimal : bool;
      (** False when [max_states] was exhausted before the layer queue
          emptied; [schedule] is then the best incumbent (never worse than
          the list scheduler's). *)
  explored_states : int;
}

val schedule :
  ?max_states:int ->
  patterns:Mps_pattern.Pattern.t list ->
  Mps_dfg.Dfg.t ->
  outcome
(** [max_states] defaults to 1_000_000.
    @raise Invalid_argument if the graph has more than 60 nodes (states
    are native-int bitmasks) or [patterns] is empty.
    @raise Multi_pattern.Unschedulable when the patterns cannot cover the
    graph's colors. *)
