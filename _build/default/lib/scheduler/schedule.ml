module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern

type t = {
  cycle_of : int array;
  slots : int list array;
  patterns : Pattern.t array;
}

let used_bag g nodes = Pattern.of_colors (List.map (Dfg.color g) nodes)

let of_cycles ?patterns g cycle_of =
  let n = Dfg.node_count g in
  if Array.length cycle_of <> n then
    invalid_arg "Schedule.of_cycles: cycle array length mismatch";
  Array.iteri
    (fun i c -> if c < 0 then invalid_arg (Printf.sprintf "Schedule.of_cycles: node %d has negative cycle" i))
    cycle_of;
  let len = Array.fold_left (fun acc c -> max acc (c + 1)) 0 cycle_of in
  let slots = Array.make len [] in
  for i = n - 1 downto 0 do
    slots.(cycle_of.(i)) <- i :: slots.(cycle_of.(i))
  done;
  let patterns =
    match patterns with
    | Some ps ->
        if Array.length ps < len then
          invalid_arg "Schedule.of_cycles: fewer patterns than cycles";
        Array.sub ps 0 len
    | None -> Array.map (used_bag g) slots
  in
  { cycle_of = Array.copy cycle_of; slots; patterns }

let cycles t = Array.length t.slots

let cycle_of t i =
  if i < 0 || i >= Array.length t.cycle_of then
    invalid_arg (Printf.sprintf "Schedule.cycle_of: node id %d out of range" i);
  t.cycle_of.(i)

let check_cycle t c =
  if c < 0 || c >= cycles t then
    invalid_arg (Printf.sprintf "Schedule: cycle %d out of range" c)

let nodes_at t c =
  check_cycle t c;
  t.slots.(c)

let pattern_at t c =
  check_cycle t c;
  t.patterns.(c)

type violation =
  | Dependency of { pred : int; node : int }
  | Overcommit of { cycle : int; pattern : Pattern.t; used : Pattern.t }
  | Illegal_pattern of { cycle : int; pattern : Pattern.t }
  | Over_capacity of { cycle : int; pattern : Pattern.t }

let used_at g t c =
  check_cycle t c;
  used_bag g t.slots.(c)

let distinct_patterns t =
  Array.to_list t.patterns |> List.sort_uniq Pattern.compare

let validate ?allowed ~capacity g t =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  Dfg.iter_edges
    (fun p n ->
      if t.cycle_of.(p) >= t.cycle_of.(n) then push (Dependency { pred = p; node = n }))
    g;
  for c = 0 to cycles t - 1 do
    let pat = t.patterns.(c) in
    let used = used_at g t c in
    if not (Pattern.subpattern used ~of_:pat) then
      push (Overcommit { cycle = c; pattern = pat; used });
    if not (Pattern.fits_capacity ~capacity pat) then
      push (Over_capacity { cycle = c; pattern = pat });
    (match allowed with
    | None -> ()
    | Some ps ->
        if not (List.exists (fun q -> Pattern.subpattern pat ~of_:q) ps) then
          push (Illegal_pattern { cycle = c; pattern = pat }))
  done;
  List.rev !violations

let pp_violation g ppf = function
  | Dependency { pred; node } ->
      Format.fprintf ppf "dependency %s -> %s not respected" (Dfg.name g pred)
        (Dfg.name g node)
  | Overcommit { cycle; pattern; used } ->
      Format.fprintf ppf "cycle %d uses %a beyond pattern %a" cycle Pattern.pp used
        Pattern.pp pattern
  | Illegal_pattern { cycle; pattern } ->
      Format.fprintf ppf "cycle %d pattern %a not allowed" cycle Pattern.pp pattern
  | Over_capacity { cycle; pattern } ->
      Format.fprintf ppf "cycle %d pattern %a exceeds capacity" cycle Pattern.pp pattern

let pp g ppf t =
  Format.fprintf ppf "@[<v>";
  for c = 0 to cycles t - 1 do
    Format.fprintf ppf "cycle %d  %-10s %a@," (c + 1)
      (Format.asprintf "%a" Pattern.pp t.patterns.(c))
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf i -> Format.pp_print_string ppf (Dfg.name g i)))
      t.slots.(c)
  done;
  Format.fprintf ppf "@]"
