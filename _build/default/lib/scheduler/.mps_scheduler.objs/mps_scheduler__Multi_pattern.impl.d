lib/scheduler/multi_pattern.ml: Array Format Int List Mps_dfg Mps_pattern Node_priority Schedule
