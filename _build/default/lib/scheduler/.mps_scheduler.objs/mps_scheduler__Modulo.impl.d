lib/scheduler/modulo.ml: Array List Loop_graph Mps_dfg Mps_pattern Mps_util Multi_pattern Printf Schedule
