lib/scheduler/loop_graph.ml: Array List Mps_dfg Mps_pattern
