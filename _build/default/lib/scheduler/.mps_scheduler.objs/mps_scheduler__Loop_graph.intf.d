lib/scheduler/loop_graph.mli: Mps_dfg Mps_pattern
