lib/scheduler/optimal.ml: Array Hashtbl List Mps_dfg Mps_pattern Multi_pattern Schedule
