lib/scheduler/multi_pattern.mli: Format Mps_dfg Mps_pattern Schedule
