lib/scheduler/schedule_opt.mli: Mps_dfg Schedule
