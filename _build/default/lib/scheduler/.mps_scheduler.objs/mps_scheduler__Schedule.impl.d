lib/scheduler/schedule.ml: Array Format List Mps_dfg Mps_pattern Printf
