lib/scheduler/reference.mli: Mps_dfg Schedule
