lib/scheduler/modulo.mli: Loop_graph Mps_dfg Mps_pattern Schedule
