lib/scheduler/optimal.mli: Mps_dfg Mps_pattern Schedule
