lib/scheduler/force_directed.mli: Mps_dfg Schedule
