lib/scheduler/schedule_opt.ml: Array List Mps_dfg Mps_pattern Schedule
