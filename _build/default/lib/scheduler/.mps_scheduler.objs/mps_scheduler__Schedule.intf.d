lib/scheduler/schedule.mli: Format Mps_dfg Mps_pattern
