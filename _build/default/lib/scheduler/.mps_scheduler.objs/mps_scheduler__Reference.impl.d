lib/scheduler/reference.ml: Array Int List Mps_dfg Node_priority Schedule
