lib/scheduler/pipeline_code.mli: Format Loop_graph Modulo Mps_dfg Mps_pattern
