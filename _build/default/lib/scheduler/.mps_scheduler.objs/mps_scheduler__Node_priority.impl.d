lib/scheduler/node_priority.ml: Array List Mps_dfg Mps_util Printf
