lib/scheduler/pipeline_code.ml: Array Format List Loop_graph Modulo Mps_dfg Mps_pattern Printf String
