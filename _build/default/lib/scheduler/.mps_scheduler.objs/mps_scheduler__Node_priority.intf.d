lib/scheduler/node_priority.mli: Mps_dfg
