lib/scheduler/force_directed.ml: Array Hashtbl List Mps_dfg Schedule
