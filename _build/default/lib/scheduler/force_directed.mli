(** Force-directed list scheduling (Paulin & Knight), the classic high-level
    synthesis baseline the paper cites in §2.

    We implement the FDLS variant: plain list scheduling over cycles, but
    the choice of which ready operations to commit (up to [capacity] per
    cycle) minimizes the {e self force}

    force(n, c) = DG(l(n), c) − mean over n's time frame of DG(l(n), ·)

    where the distribution graph DG(color, cycle) sums, over operations of
    that color, the uniform probability of the operation landing on that
    cycle within its current time frame.  Operations whose deadline equals
    the current cycle are committed unconditionally; when more such critical
    operations exist than the capacity allows, the target length is extended
    by one cycle and the frames recomputed — so the result is always a valid
    ≤ capacity-per-cycle schedule.

    Note this baseline constrains only the {e number} of concurrent
    operations, not their color mix: it answers "what would a classic
    scheduler do on a machine without the Montium's pattern restriction",
    and its per-cycle color bags are a natural pattern source for the
    selection ablation (see [Mps_select.Pattern_source]). *)

val schedule : ?target_cycles:int -> capacity:int -> Mps_dfg.Dfg.t -> Schedule.t
(** [target_cycles] defaults to the critical-path length; it is extended as
    needed, so it is a hint, not a bound.
    @raise Invalid_argument if [capacity < 1] or [target_cycles] is below
    the critical-path length. *)
