module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern

(* Free-slot bookkeeping: per cycle, the declared pattern minus the colors
   currently scheduled there. *)
let slack_of g sched =
  Array.init (Schedule.cycles sched) (fun c ->
      List.fold_left
        (fun acc i -> Pattern.remove acc (Dfg.color g i))
        (Schedule.pattern_at sched c)
        (Schedule.nodes_at sched c))

let move g sched ~pick_target order =
  let n = Dfg.node_count g in
  let cycle_of = Array.init n (Schedule.cycle_of sched) in
  let slack = slack_of g sched in
  let patterns =
    Array.init (Schedule.cycles sched) (Schedule.pattern_at sched)
  in
  List.iter
    (fun i ->
      let color = Dfg.color g i in
      match pick_target cycle_of slack i color with
      | None -> ()
      | Some target ->
          let from = cycle_of.(i) in
          if target <> from then begin
            slack.(from) <- Pattern.add slack.(from) color;
            slack.(target) <- Pattern.remove slack.(target) color;
            cycle_of.(i) <- target
          end)
    order;
  Schedule.of_cycles ~patterns g cycle_of

let sink_late g sched =
  let last = Schedule.cycles sched - 1 in
  let pick cycle_of slack i color =
    let bound =
      List.fold_left (fun acc s -> min acc (cycle_of.(s) - 1)) last (Dfg.succs g i)
    in
    (* Latest cycle in (current, bound] with a free slot of this color. *)
    let rec search c =
      if c <= cycle_of.(i) then None
      else if Pattern.count slack.(c) color > 0 then Some c
      else search (c - 1)
    in
    search bound
  in
  move g sched ~pick_target:pick (List.rev (Mps_dfg.Topo.order g))

let hoist_early g sched =
  let pick cycle_of slack i color =
    let bound =
      List.fold_left (fun acc p -> max acc (cycle_of.(p) + 1)) 0 (Dfg.preds g i)
    in
    let rec search c =
      if c >= cycle_of.(i) then None
      else if Pattern.count slack.(c) color > 0 then Some c
      else search (c + 1)
    in
    search bound
  in
  move g sched ~pick_target:pick (Mps_dfg.Topo.order g)
