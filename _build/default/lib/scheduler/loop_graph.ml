module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern

type carried = { src : int; dst : int; distance : int }

type t = { body : Dfg.t; carried : carried list }

let make body carried =
  let n = Dfg.node_count body in
  List.iter
    (fun { src; dst; distance } ->
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Loop_graph.make: carried edge endpoint out of range";
      if distance < 1 then invalid_arg "Loop_graph.make: carried distance must be >= 1")
    carried;
  { body; carried }

let body t = t.body
let carried t = t.carried

(* Dependence constraints for a candidate II: for each edge u→v with
   iteration distance d, start(v) - start(u) >= 1 - II*d.  Feasible iff the
   constraint graph has no positive cycle under longest-path relaxation. *)
let feasible_ii t ii =
  let n = Dfg.node_count t.body in
  let edges =
    List.map (fun (u, v) -> (u, v, 1)) (Dfg.edges t.body)
    @ List.map (fun { src; dst; distance } -> (src, dst, 1 - (ii * distance))) t.carried
  in
  let dist = Array.make n 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    List.iter
      (fun (u, v, w) ->
        if dist.(u) + w > dist.(v) then begin
          dist.(v) <- dist.(u) + w;
          changed := true
        end)
      edges
  done;
  not !changed

let rec_mii t =
  if t.carried = [] then 1
  else begin
    (* II = node count is always feasible (any cycle's latency is at most
       the node count and its distance at least 1); binary search down. *)
    let lo = ref 1 and hi = ref (max 1 (Dfg.node_count t.body)) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if feasible_ii t mid then hi := mid else lo := mid + 1
    done;
    !lo
  end

let res_mii t ~patterns =
  if patterns = [] then invalid_arg "Loop_graph.res_mii: no patterns";
  List.fold_left
    (fun acc (color, count) ->
      let best_slots =
        List.fold_left (fun m p -> max m (Pattern.count p color)) 0 patterns
      in
      if best_slots = 0 then max_int (* color never schedulable *)
      else max acc ((count + best_slots - 1) / best_slots))
    1
    (Dfg.color_counts t.body)

let mii t ~patterns = max (rec_mii t) (res_mii t ~patterns)
