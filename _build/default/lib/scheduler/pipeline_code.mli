(** Prologue / kernel / epilogue expansion of a modulo schedule.

    A modulo schedule with initiation interval II and single-iteration
    latency L overlaps ⌈L/II⌉ iterations in flight.  The sequencer program
    that runs it has three phases:

    - {e prologue}: the pipeline fills — cycles 0..L−II−1, each running
      only the operations of the iterations started so far;
    - {e kernel}: the II steady-state cycles, executed once per iteration
      forever (or per remaining iteration);
    - {e epilogue}: the pipeline drains after the last iteration launches.

    This module materializes those phases as per-cycle operation lists and
    the pattern each cycle needs, and accounts for the configuration table:
    the steady state needs exactly the II slot patterns, while prologue and
    epilogue cycles run {e partial} slots — which the Montium can serve
    with the same patterns (a subpattern is always coverable, §5.2), so the
    table size stays II plus nothing. *)

type phase_cycle = {
  operations : (int * int) list;
      (** (body node, iteration index) pairs executing this cycle. *)
  pattern : Mps_pattern.Pattern.t;
      (** The steady-state slot pattern covering this cycle. *)
}

type t = {
  prologue : phase_cycle list;
  kernel : phase_cycle list;  (** Length exactly II; iterations relative. *)
  epilogue : phase_cycle list;
  overlap : int;  (** Iterations in flight in steady state: ⌈L/II⌉. *)
}

val expand : Loop_graph.t -> Modulo.t -> t
(** Phases for a long-running loop.  Kernel cycle k lists the operations
    with start ≡ k (mod II); its iteration indices are relative to the
    iteration launching in that kernel instance (0 = newest). *)

val total_cycles : Modulo.t -> iterations:int -> int
(** Wall-clock cycles to run [iterations] ≥ 1 iterations:
    (iterations − 1)·II + L — the last iteration launches at
    (iterations−1)·II and needs L cycles to drain.
    @raise Invalid_argument if [iterations < 1]. *)

val pp : Mps_dfg.Dfg.t -> Format.formatter -> t -> unit
