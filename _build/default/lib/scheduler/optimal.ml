module Dfg = Mps_dfg.Dfg
module Color = Mps_dfg.Color
module Levels = Mps_dfg.Levels
module Pattern = Mps_pattern.Pattern

type outcome = {
  schedule : Schedule.t;
  cycles : int;
  proven_optimal : bool;
  explored_states : int;
}

(* Choose [k] elements from a list, all combinations. *)
let rec combinations k l =
  if k = 0 then [ [] ]
  else
    match l with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest)
        @ combinations k rest

let schedule ?(max_states = 1_000_000) ~patterns g =
  let n = Dfg.node_count g in
  if n > 60 then invalid_arg "Optimal.schedule: more than 60 nodes";
  if patterns = [] then invalid_arg "Optimal.schedule: no patterns";
  (* Incumbent (and the Unschedulable check) from the list scheduler. *)
  let incumbent = (Multi_pattern.schedule ~patterns g).Multi_pattern.schedule in
  let ub = ref (Schedule.cycles incumbent) in
  let best = ref None in
  let levels = Levels.compute g in
  let height = Array.init n (Levels.height levels) in
  let colors = Dfg.colors g in
  let ncolors = List.length colors in
  let idx_of c =
    let rec find i = function
      | [] -> invalid_arg "Optimal.schedule: unknown color"
      | x :: rest -> if Color.equal x c then i else find (i + 1) rest
    in
    find 0 colors
  in
  let node_color = Array.init n (fun i -> idx_of (Dfg.color g i)) in
  (* Per-color maximum slots over the patterns: the per-color cycle bound. *)
  let max_slots = Array.make ncolors 0 in
  List.iter
    (fun p ->
      List.iteri
        (fun ci c -> max_slots.(ci) <- max max_slots.(ci) (Pattern.count p c))
        colors)
    patterns;
  let pred_mask = Array.make n 0 in
  Dfg.iter_edges (fun s d -> pred_mask.(d) <- pred_mask.(d) lor (1 lsl s)) g;
  let full = (1 lsl n) - 1 in
  (* Remaining-work lower bound for a state. *)
  let lower_bound mask =
    let crit = ref 0 in
    let per_color = Array.make ncolors 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) = 0 then begin
        if height.(i) > !crit then crit := height.(i);
        per_color.(node_color.(i)) <- per_color.(node_color.(i)) + 1
      end
    done;
    let color_bound = ref 0 in
    Array.iteri
      (fun ci k ->
        if k > 0 then begin
          let per_cycle = max 1 max_slots.(ci) in
          let b = (k + per_cycle - 1) / per_cycle in
          if b > !color_bound then color_bound := b
        end)
      per_color;
    max !crit !color_bound
  in
  (* BFS over masks; parent links reconstruct the winning schedule. *)
  let seen = Hashtbl.create 4096 in
  let parent = Hashtbl.create 4096 in
  let explored = ref 0 in
  let truncated = ref false in
  Hashtbl.replace seen 0 ();
  let layer = ref [ 0 ] in
  let depth = ref 0 in
  let exception Done in
  (try
     while !layer <> [] do
       let next = ref [] in
       List.iter
         (fun mask ->
           if !depth + lower_bound mask < !ub then begin
             incr explored;
             if !explored > max_states then begin
               truncated := true;
               raise Done
             end;
             (* Ready nodes, grouped by color. *)
             let by_color = Array.make ncolors [] in
             for i = n - 1 downto 0 do
               if mask land (1 lsl i) = 0 && pred_mask.(i) land mask = pred_mask.(i)
               then by_color.(node_color.(i)) <- i :: by_color.(node_color.(i))
             done;
             List.iter
               (fun p ->
                 (* Maximal selections under p: per color, all ways of
                    filling min(slots, ready) slots; cross product. *)
                 let per_color_choices =
                   List.mapi
                     (fun ci c ->
                       let ready = by_color.(ci) in
                       let k = min (Pattern.count p c) (List.length ready) in
                       combinations k ready)
                     colors
                 in
                 let rec cross acc = function
                   | [] -> [ acc ]
                   | choices :: rest ->
                       List.concat_map
                         (fun sel -> cross (List.rev_append sel acc) rest)
                         choices
                 in
                 let selections = cross [] per_color_choices in
                 List.iter
                   (fun sel ->
                     if sel <> [] then begin
                       let sel_mask =
                         List.fold_left (fun m i -> m lor (1 lsl i)) 0 sel
                       in
                       let mask' = mask lor sel_mask in
                       if not (Hashtbl.mem seen mask') then begin
                         Hashtbl.replace seen mask' ();
                         Hashtbl.replace parent mask' (mask, p, sel);
                         if mask' = full then begin
                           if !depth + 1 < !ub then begin
                             ub := !depth + 1;
                             best := Some mask'
                           end
                         end
                         else next := mask' :: !next
                       end
                     end)
                   selections)
               patterns
           end)
         !layer;
       layer := !next;
       incr depth
     done
   with Done -> ());
  let schedule, cycles =
    match !best with
    | None -> (incumbent, Schedule.cycles incumbent)
    | Some goal ->
        let cycle_of = Array.make n 0 in
        let rec walk mask acc =
          if mask = 0 then acc
          else begin
            let prev, p, sel = Hashtbl.find parent mask in
            walk prev ((p, sel) :: acc)
          end
        in
        let steps = walk goal [] in
        let pats = Array.of_list (List.map fst steps) in
        List.iteri
          (fun c (_, sel) -> List.iter (fun i -> cycle_of.(i) <- c) sel)
          steps;
        (Schedule.of_cycles ~patterns:pats g cycle_of, List.length steps)
  in
  {
    schedule;
    cycles;
    proven_optimal = not !truncated;
    explored_states = !explored;
  }
