(** Cyclic data-flow graphs: a loop body plus loop-carried dependencies.

    The Montium is a streaming architecture; its kernels are loops.  A loop
    is modeled as an acyclic body (a {!Mps_dfg.Dfg.t}) plus {e carried}
    edges (src, dst, distance): the value produced by [src] in iteration i
    is consumed by [dst] in iteration i+distance, distance ≥ 1.  Intra-
    iteration dependencies are the body's ordinary edges.

    This is the input to {!Modulo} scheduling.  The key derived quantity is
    the {e recurrence minimum initiation interval}: every cycle of carried
    dependencies C forces II ≥ ⌈latency(C) / distance(C)⌉. *)

type carried = { src : int; dst : int; distance : int }

type t

val make : Mps_dfg.Dfg.t -> carried list -> t
(** @raise Invalid_argument on out-of-range node ids or non-positive
    distances.  Self-carried edges (src = dst, distance ≥ 1) are the
    ordinary accumulator pattern and are allowed. *)

val body : t -> Mps_dfg.Dfg.t
val carried : t -> carried list

val rec_mii : t -> int
(** Recurrence bound: the smallest II compatible with every dependence
    cycle (1 if there are no carried edges — the body alone is acyclic).
    Computed by binary search over II with a longest-path feasibility test
    (Bellman–Ford on the constraint graph with edge weights
    latency − II·distance). *)

val res_mii : t -> patterns:Mps_pattern.Pattern.t list -> int
(** Resource bound: for each color, ⌈nodes of that color / best slots any
    single pattern offers⌉ — II slots each pick one pattern, so no single
    slot can beat the best pattern, and II slots cannot beat II times it.
    @raise Invalid_argument on an empty pattern list. *)

val mii : t -> patterns:Mps_pattern.Pattern.t list -> int
(** max of the two bounds. *)
