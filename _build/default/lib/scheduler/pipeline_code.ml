module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern

type phase_cycle = {
  operations : (int * int) list;
  pattern : Pattern.t;
}

type t = {
  prologue : phase_cycle list;
  kernel : phase_cycle list;
  epilogue : phase_cycle list;
  overlap : int;
}

let expand loop (m : Modulo.t) =
  let g = Loop_graph.body loop in
  let n = Dfg.node_count g in
  let ii = m.Modulo.ii in
  let l = m.Modulo.makespan in
  let overlap = (l + ii - 1) / ii in
  let fill_len = max 0 (l - ii) in
  (* Prologue cycle t (absolute time t < fill_len): iteration j's op i runs
     when start(i) + j*ii = t. *)
  let prologue =
    List.init fill_len (fun t ->
        let operations = ref [] in
        for i = n - 1 downto 0 do
          let s = m.Modulo.starts.(i) in
          if s <= t && (t - s) mod ii = 0 then
            operations := (i, (t - s) / ii) :: !operations
        done;
        { operations = !operations; pattern = m.Modulo.slot_patterns.(t mod ii) })
  in
  (* Kernel cycle k: every op with start ≡ k (mod ii); relative iteration
     index = start / ii (0 = the newest iteration in flight). *)
  let kernel =
    List.init ii (fun k ->
        let operations = ref [] in
        for i = n - 1 downto 0 do
          let s = m.Modulo.starts.(i) in
          if s mod ii = k then operations := (i, s / ii) :: !operations
        done;
        { operations = !operations; pattern = m.Modulo.slot_patterns.(k) })
  in
  (* Epilogue cycle e: ops of the last [overlap-1] iterations still in
     flight — (i, r) with start(i) = (r+1)*ii + e, r counting back from the
     last-launched iteration (0 = last). *)
  let epilogue =
    List.init fill_len (fun e ->
        let operations = ref [] in
        for i = n - 1 downto 0 do
          let s = m.Modulo.starts.(i) in
          if s >= ii + e && (s - e) mod ii = 0 then
            operations := (i, ((s - e) / ii) - 1) :: !operations
        done;
        { operations = !operations; pattern = m.Modulo.slot_patterns.(e mod ii) })
  in
  { prologue; kernel; epilogue; overlap }

let total_cycles (m : Modulo.t) ~iterations =
  if iterations < 1 then invalid_arg "Pipeline_code.total_cycles: iterations < 1";
  ((iterations - 1) * m.Modulo.ii) + m.Modulo.makespan

let pp g ppf t =
  let phase name cycles =
    Format.fprintf ppf "%s (%d cycles):@," name (List.length cycles);
    List.iteri
      (fun idx { operations; pattern } ->
        Format.fprintf ppf "  %2d %-8s %s@," idx
          (Format.asprintf "%a" Pattern.pp pattern)
          (String.concat " "
             (List.map
                (fun (i, r) -> Printf.sprintf "%s[-%d]" (Dfg.name g i) r)
                operations)))
      cycles
  in
  Format.fprintf ppf "@[<v>pipeline: %d iterations in flight@," t.overlap;
  phase "prologue" t.prologue;
  phase "kernel" t.kernel;
  phase "epilogue" t.epilogue;
  Format.fprintf ppf "@]"
