(** Schedule post-passes that keep the cycle count and the per-cycle
    pattern legality intact.

    {!sink_late} moves every operation as late as its successors and the
    declared patterns allow, processing sinks first.  The intent is
    register-lifetime shaping: a value produced later is alive for fewer
    cycles on its consumers' side (though its own operands live longer —
    the ablation measures the net effect on the tile's register files
    rather than claiming a theorem).  Length, dependences and the
    pattern-per-cycle discipline are preserved by construction and
    re-checked by the tests. *)

val sink_late : Mps_dfg.Dfg.t -> Schedule.t -> Schedule.t
(** Nodes move only to cycles whose declared pattern still has a free slot
    of the node's color; the declared pattern array is unchanged. *)

val hoist_early : Mps_dfg.Dfg.t -> Schedule.t -> Schedule.t
(** The mirror pass: every operation as early as predecessors and patterns
    allow — useful to normalize a schedule before comparing shapes. *)
