(** Iterative modulo scheduling under a pattern restriction — software
    pipelining for the Montium's streaming loops.

    A modulo schedule assigns each loop-body operation a start cycle; a new
    iteration launches every II cycles, so operations whose start cycles
    are congruent modulo II execute simultaneously (for different
    iterations) and must jointly fit one clock cycle — here, one {e slot
    pattern}, which like every cycle on the tile must be covered by one of
    the allowed patterns.  The sequencer then holds at most II (+ prologue)
    configurations and the loop sustains one iteration per II cycles
    forever, which is the whole point of a CGRA.

    The algorithm is Rau's iterative modulo scheduling, simplified to unit
    latencies: try II from the {!Loop_graph.mii} bound upward; within one
    II, place operations highest-priority-first at their earliest feasible
    cycle, searching an II-wide window for a slot whose color budget still
    fits an allowed pattern, evicting lower-priority conflicting
    placements when forced, within an operation budget. *)

type t = {
  ii : int;  (** Achieved initiation interval: 1/throughput. *)
  starts : int array;  (** Per body node, its start cycle (iteration 0). *)
  slot_patterns : Mps_pattern.Pattern.t array;
      (** Per slot s < II, the allowed pattern covering the slot's load. *)
  makespan : int;  (** 1 + max start: the single-iteration latency. *)
}

exception No_schedule of { tried_up_to : int }
(** No II up to the bound produced a schedule within the operation
    budget. *)

val schedule :
  ?max_ii:int ->
  ?budget_factor:int ->
  patterns:Mps_pattern.Pattern.t list ->
  Loop_graph.t ->
  t
(** [max_ii] defaults to the body's node count (always sufficient for the
    dependence constraints; resource feasibility additionally requires the
    patterns to cover the body's colors).  [budget_factor] (default 8)
    bounds placements per II attempt at [factor × nodes].
    @raise Multi_pattern.Unschedulable when some body color appears in no
    pattern.
    @raise No_schedule as documented.
    @raise Invalid_argument if [patterns] is empty or the knobs are
    non-positive. *)

val validate :
  patterns:Mps_pattern.Pattern.t list -> Loop_graph.t -> t -> (unit, string) result
(** Re-checks every dependence inequality (start(v) ≥ start(u) + 1 − II·d)
    and every slot's pattern coverage. *)

val to_unrolled :
  iterations:int -> Loop_graph.t -> t -> Mps_dfg.Dfg.t * Schedule.t
(** Materializes [iterations] copies of the body — intra-iteration edges
    within each copy, carried edges from copy i to copy i+distance — and
    the flat schedule cycle(node, iter) = start + II·iter with each cycle
    declaring its slot's pattern.  Running {!Schedule.validate} on that
    pair is the strongest correctness check of a modulo schedule, and what
    the tests do.  @raise Invalid_argument if [iterations < 1]. *)
