(** Schedules: the assignment of every DFG node to a clock cycle, plus the
    pattern each cycle runs under (paper §4's scheduling objective).

    A schedule is valid for a capacity-C machine and an allowed pattern set
    when (1) every dependency crosses strictly forward in time, (2) each
    cycle's color usage is a subpattern of that cycle's declared pattern,
    and (3) each declared pattern is one of the allowed patterns (and fits
    the capacity).  {!validate} checks exactly that. *)

type t

val of_cycles : ?patterns:Mps_pattern.Pattern.t array -> Mps_dfg.Dfg.t -> int array -> t
(** [of_cycles g cycle_of] packages a per-node cycle assignment.  Cycles
    must be ≥ 0; the schedule length is [1 + max cycle] (0 for an empty
    graph).  When [patterns] is omitted, each cycle declares exactly the bag
    of colors it uses.  @raise Invalid_argument if the array length differs
    from the node count, a cycle is negative, or [patterns] is shorter than
    the schedule. *)

val cycles : t -> int
(** Number of clock cycles (the paper's figure of merit). *)

val cycle_of : t -> int -> int
val nodes_at : t -> int -> int list
(** Nodes of one cycle, increasing id.  @raise Invalid_argument if out of
    range. *)

val pattern_at : t -> int -> Mps_pattern.Pattern.t
(** Declared pattern of the cycle. *)

val used_at : Mps_dfg.Dfg.t -> t -> int -> Mps_pattern.Pattern.t
(** Bag of colors actually used in the cycle (a subpattern of
    [pattern_at] in a valid schedule). *)

val distinct_patterns : t -> Mps_pattern.Pattern.t list
(** Declared patterns, deduplicated, sorted — what must fit in the
    Montium's 32-entry configuration space. *)

type violation =
  | Dependency of { pred : int; node : int }
      (** [pred] does not finish strictly before [node]. *)
  | Overcommit of { cycle : int; pattern : Mps_pattern.Pattern.t; used : Mps_pattern.Pattern.t }
      (** A cycle uses colors not covered by its declared pattern. *)
  | Illegal_pattern of { cycle : int; pattern : Mps_pattern.Pattern.t }
      (** Declared pattern not in the allowed set. *)
  | Over_capacity of { cycle : int; pattern : Mps_pattern.Pattern.t }

val validate :
  ?allowed:Mps_pattern.Pattern.t list ->
  capacity:int ->
  Mps_dfg.Dfg.t ->
  t ->
  violation list
(** Empty list ⇔ valid.  [allowed] checks each declared pattern is a
    subpattern of (i.e. coverable by) some allowed pattern, matching the
    paper's use of selected patterns wherever a subpattern is needed. *)

val pp_violation : Mps_dfg.Dfg.t -> Format.formatter -> violation -> unit

val pp : Mps_dfg.Dfg.t -> Format.formatter -> t -> unit
(** One line per cycle: cycle number, pattern, node names. *)
