(** Unlimited-resource reference schedules.

    ASAP and ALAP schedules ignore resources entirely; both achieve the
    critical-path length [ASAPmax + 1] and bound every resource-constrained
    scheduler from below.  The tests use them as fixed points (a schedule is
    valid iff each node sits within its [ASAP,ALAP] window when the length
    equals the lower bound). *)

val asap : Mps_dfg.Dfg.t -> Schedule.t
(** Every node at its ASAP level. *)

val alap : Mps_dfg.Dfg.t -> Schedule.t
(** Every node at its ALAP level. *)

val greedy_capacity : capacity:int -> Mps_dfg.Dfg.t -> Schedule.t
(** List scheduling under only a "≤ capacity nodes per cycle" constraint —
    any color mix allowed, highest node priority first.  This is the
    idealized machine whose every pattern is legal: a lower-bound baseline
    for the pattern-restricted schedulers, and the paper's implicit
    reference for how much the 32-pattern restriction costs. *)
