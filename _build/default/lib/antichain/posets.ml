module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Bitset = Mps_util.Bitset

type t = {
  graph : Dfg.t;
  width : int;
  max_antichain : int list;
  min_chain_cover : int list list;
  mirsky_cover : int list list;
  longest_chain : int;
}

(* Kuhn's augmenting-path matching on the closure's split graph:
   left u — right v whenever v is a strict descendant of u. *)
let matching g reach =
  let n = Dfg.node_count g in
  let match_right = Array.make n (-1) in
  let match_left = Array.make n (-1) in
  let rec augment visited u =
    let found = ref false in
    Bitset.iter
      (fun v ->
        if (not !found) && not (Bitset.mem visited v) then begin
          Bitset.add visited v;
          if match_right.(v) < 0 || augment visited match_right.(v) then begin
            match_right.(v) <- u;
            match_left.(u) <- v;
            found := true
          end
        end)
      (Reachability.descendants reach u);
    !found
  in
  for u = 0 to n - 1 do
    ignore (augment (Bitset.create n) u)
  done;
  (match_left, match_right)

let analyze g =
  let n = Dfg.node_count g in
  let reach = Reachability.compute g in
  let levels = Levels.compute g in
  let match_left, match_right = matching g reach in
  (* Chains: start at nodes that are not a matched successor, follow
     match_left links. *)
  let min_chain_cover =
    List.filter_map
      (fun start ->
        if match_right.(start) >= 0 then None
        else begin
          let rec walk i acc =
            if match_left.(i) >= 0 then walk match_left.(i) (i :: acc) else i :: acc
          in
          Some (List.rev (walk start []))
        end)
      (Dfg.nodes g)
  in
  (* König: alternating reachability from unmatched left vertices. *)
  let z_left = Bitset.create n and z_right = Bitset.create n in
  let rec explore u =
    if not (Bitset.mem z_left u) then begin
      Bitset.add z_left u;
      Bitset.iter
        (fun v ->
          if not (Bitset.mem z_right v) then begin
            Bitset.add z_right v;
            if match_right.(v) >= 0 then explore match_right.(v)
          end)
        (Reachability.descendants reach u)
    end
  in
  List.iter (fun u -> if match_left.(u) < 0 then explore u) (Dfg.nodes g);
  let max_antichain =
    List.filter
      (fun v -> Bitset.mem z_left v && not (Bitset.mem z_right v))
      (Dfg.nodes g)
  in
  (* Mirsky: ASAP levels partition into antichains. *)
  let longest_chain = Levels.asap_max levels + 1 in
  let mirsky_cover =
    if n = 0 then []
    else
      List.init longest_chain (fun l ->
          List.filter (fun i -> Levels.asap levels i = l) (Dfg.nodes g))
  in
  {
    graph = g;
    width = List.length max_antichain;
    max_antichain;
    min_chain_cover;
    mirsky_cover;
    longest_chain = (if n = 0 then 0 else longest_chain);
  }

let width t = t.width
let max_antichain t = t.max_antichain
let min_chain_cover t = t.min_chain_cover
let mirsky_cover t = t.mirsky_cover

let lower_bound_cycles t ~capacity =
  let n = Dfg.node_count t.graph in
  if n = 0 then 0
  else begin
    let per_cycle = max 1 (min t.width capacity) in
    max t.longest_chain ((n + per_cycle - 1) / per_cycle)
  end

let pp g ppf t =
  let names l = String.concat "," (List.map (Dfg.name g) l) in
  Format.fprintf ppf
    "@[<v>width %d (max antichain {%s})@,%d chains in a minimum cover@,\
     %d antichains in the Mirsky cover (= longest chain)@]"
    t.width (names t.max_antichain)
    (List.length t.min_chain_cover)
    (List.length t.mirsky_cover)
