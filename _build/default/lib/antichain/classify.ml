module Dfg = Mps_dfg.Dfg
module Pattern = Mps_pattern.Pattern

type entry = {
  mutable count : int;
  freq : int array;
  mutable kept : Antichain.t list; (* reversed *)
}

type t = {
  graph : Dfg.t;
  capacity : int;
  span_limit : int option;
  entries : entry Pattern.Map.t;
  total : int;
  truncated : bool;
}

let compute ?span_limit ?budget ?(keep_antichains = false) ~capacity ctx =
  let graph = Enumerate.ctx_graph ctx in
  let n = Dfg.node_count graph in
  let entries = ref Pattern.Map.empty in
  let total = ref 0 in
  let classify a =
    incr total;
    let p = Antichain.pattern graph a in
    let e =
      match Pattern.Map.find_opt p !entries with
      | Some e -> e
      | None ->
          let e = { count = 0; freq = Array.make n 0; kept = [] } in
          entries := Pattern.Map.add p e !entries;
          e
    in
    e.count <- e.count + 1;
    List.iter (fun i -> e.freq.(i) <- e.freq.(i) + 1) (Antichain.nodes a);
    if keep_antichains then e.kept <- a :: e.kept
  in
  let truncated =
    match Enumerate.iter ?span_limit ?budget ~max_size:capacity ctx ~f:classify with
    | () -> false
    | exception Enumerate.Budget_exhausted -> true
  in
  { graph; capacity; span_limit; entries = !entries; total = !total; truncated }

let truncated t = t.truncated

let graph t = t.graph
let capacity t = t.capacity
let span_limit t = t.span_limit
let patterns t = List.map fst (Pattern.Map.bindings t.entries)
let pattern_count t = Pattern.Map.cardinal t.entries
let find t p = Pattern.Map.find_opt p t.entries
let count t p = match find t p with Some e -> e.count | None -> 0

let node_frequency t p =
  match find t p with
  | Some e -> Array.copy e.freq
  | None -> Array.make (Dfg.node_count t.graph) 0

let frequency t p n = match find t p with Some e -> e.freq.(n) | None -> 0
let antichains t p = match find t p with Some e -> List.rev e.kept | None -> []
let total_antichains t = t.total

let fold f t acc =
  Pattern.Map.fold (fun p e acc -> f p ~count:e.count ~freq:e.freq acc) t.entries acc

let pp_table ppf t =
  Pattern.Map.iter
    (fun p e -> Format.fprintf ppf "%a: %d antichains@." Pattern.pp p e.count)
    t.entries
