(** Antichains of a DFG (paper §3 and §5.1).

    An antichain is a set of pairwise parallelizable nodes — nodes none of
    which follows another.  An antichain of size ≤ C ({e executable}) can in
    principle occupy one clock cycle of a C-ALU machine; its {e pattern} is
    the bag of its nodes' colors; its {e span} measures how far apart in
    schedule levels its members sit, and Theorem 1 turns the span into a
    lower bound on any schedule that runs the antichain in one cycle. *)

type t
(** A validated antichain: node ids, strictly increasing. *)

val of_nodes : Mps_dfg.Reachability.t -> int list -> t
(** @raise Invalid_argument if the nodes are not pairwise parallelizable or
    contain duplicates (the empty antichain is allowed). *)

val of_nodes_unchecked : int list -> t
(** Trusts the caller (used by the enumerator, which constructs antichains
    by refinement and cannot produce invalid ones).  Sorts the ids. *)

val nodes : t -> int list
val size : t -> int
val mem : t -> int -> bool

val is_executable : capacity:int -> t -> bool
(** size ≤ C (§3). *)

val pattern : Mps_dfg.Dfg.t -> t -> Mps_pattern.Pattern.t

val span : Mps_dfg.Levels.t -> t -> int
(** Span(A) = U(max ASAP − min ALAP) (§5.1); 0 for the empty antichain. *)

val span_bound : Mps_dfg.Levels.t -> t -> int
(** Theorem 1: scheduling all of [t] in one cycle forces the whole schedule
    to at least [ASAPmax + Span + 1] cycles. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Mps_dfg.Dfg.t -> Format.formatter -> t -> unit
(** [{b1,a4,b3}] — node names in id order. *)
