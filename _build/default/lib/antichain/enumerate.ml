module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Bitset = Mps_util.Bitset

type ctx = {
  graph : Dfg.t;
  levels : Levels.t;
  reach : Reachability.t;
}

let make_ctx graph =
  { graph; levels = Levels.compute graph; reach = Reachability.compute graph }

let ctx_graph ctx = ctx.graph
let ctx_levels ctx = ctx.levels
let ctx_reachability ctx = ctx.reach

exception Budget_exhausted

(* The span of a growing set is tracked incrementally: adding a node can only
   raise max(ASAP) and lower min(ALAP), so span never shrinks along a branch
   and a limit violation prunes the whole subtree. *)
let iter_spanned ?span_limit ?budget ~max_size ctx ~f =
  if max_size < 1 then invalid_arg "Enumerate.iter: max_size must be >= 1";
  (match span_limit with
  | Some l when l < 0 -> invalid_arg "Enumerate.iter: negative span_limit"
  | _ -> ());
  (match budget with
  | Some b when b < 0 -> invalid_arg "Enumerate.iter: negative budget"
  | _ -> ());
  let remaining = ref (Option.value budget ~default:max_int) in
  let f ~span nodes =
    if !remaining = 0 then raise Budget_exhausted;
    decr remaining;
    f ~span nodes
  in
  let n = Dfg.node_count ctx.graph in
  let lv = ctx.levels in
  let within_limit span =
    match span_limit with None -> true | Some l -> span <= l
  in
  (* chosen is kept reversed; emitted antichains are re-reversed, hence
     increasing. *)
  let rec extend chosen size compat max_asap min_alap last ~span =
    match Bitset.first_from compat (last + 1) with
    | None -> ()
    | Some j ->
        let asap_j = Levels.asap lv j and alap_j = Levels.alap lv j in
        let max_asap' = max max_asap asap_j in
        let min_alap' = min min_alap alap_j in
        let span' = max 0 (max_asap' - min_alap') in
        if within_limit span' then begin
          let chosen' = j :: chosen in
          f ~span:span' (List.rev chosen');
          if size + 1 < max_size then begin
            let compat' = Bitset.copy compat in
            Bitset.inter_into ~dst:compat' (Reachability.parallel_set ctx.reach j);
            extend chosen' (size + 1) compat' max_asap' min_alap' j ~span:span'
          end
        end;
        (* Continue with the next candidate at this depth whether or not j
           survived the span check: a later node may have milder levels. *)
        extend chosen size compat max_asap min_alap j ~span
  in
  for i = 0 to n - 1 do
    let chosen = [ i ] in
    f ~span:0 chosen;
    if max_size > 1 then
      extend chosen 1
        (Bitset.copy (Reachability.parallel_set ctx.reach i))
        (Levels.asap lv i) (Levels.alap lv i) i ~span:0
  done

let iter ?span_limit ?budget ~max_size ctx ~f =
  iter_spanned ?span_limit ?budget ~max_size ctx ~f:(fun ~span:_ nodes ->
      f (Antichain.of_nodes_unchecked nodes))

let all ?span_limit ~max_size ctx =
  let acc = ref [] in
  iter ?span_limit ~max_size ctx ~f:(fun a -> acc := a :: !acc);
  List.rev !acc

let count ?span_limit ~max_size ctx =
  let c = ref 0 in
  iter_spanned ?span_limit ~max_size ctx ~f:(fun ~span:_ _ -> incr c);
  !c

let count_by_size ?span_limit ~max_size ctx =
  let counts = Array.make (max_size + 1) 0 in
  iter_spanned ?span_limit ~max_size ctx ~f:(fun ~span:_ nodes ->
      let s = List.length nodes in
      counts.(s) <- counts.(s) + 1);
  counts

let count_matrix ~max_size ~max_span ctx =
  let exact = Array.make_matrix (max_span + 1) (max_size + 1) 0 in
  iter_spanned ~span_limit:max_span ~max_size ctx ~f:(fun ~span nodes ->
      let s = List.length nodes in
      exact.(span).(s) <- exact.(span).(s) + 1);
  (* Prefix-sum over span so row l counts span <= l. *)
  let m = Array.make_matrix (max_span + 1) (max_size + 1) 0 in
  for l = 0 to max_span do
    for s = 0 to max_size do
      m.(l).(s) <- exact.(l).(s) + if l > 0 then m.(l - 1).(s) else 0
    done
  done;
  m
