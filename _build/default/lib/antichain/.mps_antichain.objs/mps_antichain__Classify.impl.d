lib/antichain/classify.ml: Antichain Array Enumerate Format List Mps_dfg Mps_pattern
