lib/antichain/posets.mli: Format Mps_dfg
