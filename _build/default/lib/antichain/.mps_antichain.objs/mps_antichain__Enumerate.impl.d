lib/antichain/enumerate.ml: Antichain Array List Mps_dfg Mps_util Option
