lib/antichain/classify.mli: Antichain Enumerate Format Mps_dfg Mps_pattern
