lib/antichain/antichain.mli: Format Mps_dfg Mps_pattern
