lib/antichain/antichain.ml: Format Int List Mps_dfg Mps_pattern
