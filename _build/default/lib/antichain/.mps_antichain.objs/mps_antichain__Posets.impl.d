lib/antichain/posets.ml: Array Format List Mps_dfg Mps_util String
