lib/antichain/enumerate.mli: Antichain Mps_dfg
