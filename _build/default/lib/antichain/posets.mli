(** Classical poset analyses of a DFG: width, chain covers, antichain
    covers.

    The paper borrows the antichain concept from poset theory (§3 cites
    exactly that); this module supplies the two structure theorems that
    govern how much parallelism a graph {e can} expose:

    - {b Dilworth}: the maximum antichain size (the graph's {e width})
      equals the minimum number of chains covering it.  We compute it by
      König's theorem on the transitive closure's bipartite split graph —
      a maximum matching gives a minimum chain cover, whose complement
      yields a maximum antichain.
    - {b Mirsky}: the minimum number of antichains covering the graph
      equals the longest chain length; the ASAP levels realize it.

    Consequences the rest of the library uses: if width ≤ C the capacity
    constraint never binds (only colors matter); ⌈n / width⌉ and the
    Mirsky number are schedule lower bounds complementing the critical
    path. *)

type t

val analyze : Mps_dfg.Dfg.t -> t

val width : t -> int
(** Maximum antichain size (0 for the empty graph). *)

val max_antichain : t -> int list
(** One maximum antichain, increasing ids; verified against
    {!Mps_dfg.Reachability.is_antichain} by construction. *)

val min_chain_cover : t -> int list list
(** Chains (each a path in the transitive closure, source to sink order)
    partitioning the nodes; their count equals {!width} by Dilworth. *)

val mirsky_cover : t -> int list list
(** The ASAP-level antichain partition; its length equals the longest
    chain (= critical path in nodes). *)

val lower_bound_cycles : t -> capacity:int -> int
(** max(critical path, ⌈n / min(width, capacity)⌉): no capacity-C schedule
    can beat it regardless of patterns. *)

val pp : Mps_dfg.Dfg.t -> Format.formatter -> t -> unit
