module Dfg = Mps_dfg.Dfg
module Levels = Mps_dfg.Levels
module Reachability = Mps_dfg.Reachability
module Pattern = Mps_pattern.Pattern

type t = int list

let of_nodes_unchecked nodes = List.sort_uniq Int.compare nodes

let of_nodes reach nodes =
  let sorted = List.sort Int.compare nodes in
  let deduped = List.sort_uniq Int.compare nodes in
  if List.length sorted <> List.length deduped then
    invalid_arg "Antichain.of_nodes: duplicate node";
  if not (Reachability.is_antichain reach deduped) then
    invalid_arg "Antichain.of_nodes: nodes are not pairwise parallelizable";
  deduped

let nodes t = t
let size = List.length
let mem t i = List.mem i t
let is_executable ~capacity t = size t <= capacity
let pattern g t = Pattern.of_antichain_colors g t
let span levels t = if t = [] then 0 else Levels.span levels t
let span_bound levels t = Levels.asap_max levels + span levels t + 1
let compare = List.compare Int.compare
let equal a b = compare a b = 0

let pp g ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       (fun ppf i -> Format.pp_print_string ppf (Dfg.name g i)))
    t
